//! `serve-load`: load generator for the `rescue-serve` job daemon.
//!
//! Starts an in-process [`rescue_serve::JobServer`] on an ephemeral
//! port and replays a mixed job trace (ATPG, lint, fault-sim, netlist
//! stats on the tiny pipeline model) in three phases:
//!
//! 1. **populate** — each distinct job once, serially: all cold, so
//!    the cold latencies and the result-cache miss count are exact;
//! 2. **replay** — `--clients` threads × `--replays` passes over the
//!    same trace: every job is a result-cache hit by construction
//!    (the populate phase completed first), so the hit count is exact
//!    and the warm latencies measure the serving overhead alone;
//! 3. **shed** — a second server with one worker and a zero-depth
//!    queue, its worker pinned by a cold job; probe jobs must shed
//!    with `429` while `/metrics` keeps answering.
//!
//! Deterministic counts land in the `serve.cache` report section
//! (gated exactly by `bench-diff`); throughput and latency
//! percentiles land in `serve.load` (informational, like every other
//! wall-clock metric). `--emit-netlist PATH` writes the model netlist
//! text and exits — the CI smoke job uses it to get a netlist without
//! a Rust toolchain step of its own.

use rescue_core::model::{build_pipeline, ModelParams, Variant};
use rescue_core::netlist::text;
use rescue_serve::{JobServer, ServeOptions};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// POST one job; returns `(status line, body)`.
fn post_job(addr: SocketAddr, config: &str, netlist: &str) -> (String, String) {
    let body = format!("{config}\n{netlist}");
    let mut stream = TcpStream::connect(addr).expect("connect to job server");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write job request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read job response");
    let (head, resp_body) = response.split_once("\r\n\r\n").unwrap_or((&response, ""));
    (
        head.lines().next().unwrap_or_default().to_owned(),
        resp_body.to_owned(),
    )
}

fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn saw_hit(body: &str, hit: bool) -> bool {
    body.lines().any(|l| {
        l.contains("\"name\":\"serve.result.cache\"") && l.contains(&format!("\"hit\":{hit}"))
    })
}

fn has_result(body: &str) -> bool {
    body.lines().any(|l| l.starts_with("{\"type\":\"result\""))
}

/// Percentile (nearest-rank) of sorted nanosecond latencies.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn main() {
    let obs = rescue_bench::obs_init();
    rescue_obs::global().set_enabled(true);

    let netlist = text::to_text(&build_pipeline(&ModelParams::tiny(), Variant::Rescue).netlist);
    if let Some(path) = rescue_bench::arg_str("--emit-netlist") {
        std::fs::write(&path, &netlist).expect("write netlist text");
        eprintln!("wrote model netlist {path}");
        return;
    }

    let quick = rescue_bench::quick_mode();
    let clients = rescue_bench::arg_usize("--clients", if quick { 2 } else { 4 });
    let replays = rescue_bench::arg_usize("--replays", if quick { 2 } else { 4 });
    let fsim_seeds = rescue_bench::arg_usize("--fsim-seeds", if quick { 2 } else { 4 });

    // The mixed trace: one heavy ATPG job, the cheap kinds, and a fan
    // of distinct fault-sim seeds (distinct result-cache entries over
    // one cached design).
    let mut trace: Vec<String> = vec![
        r#"{"kind":"atpg"}"#.to_owned(),
        r#"{"kind":"lint"}"#.to_owned(),
        r#"{"kind":"netlist"}"#.to_owned(),
    ];
    for seed in 0..fsim_seeds {
        trace.push(format!(r#"{{"kind":"fsim","patterns":2,"seed":{seed}}}"#));
    }

    let mut report = rescue_bench::run_repeated("serve_load", &obs, |report, _first| {
        // Fresh server (fresh caches) per measured run.
        let mut server =
            JobServer::start("127.0.0.1:0", ServeOptions::default()).expect("job server starts");
        let addr = server.addr();

        // Phase 1: populate, serially. Everything is cold. The ATPG
        // job's own latency is kept separate: the trace is mostly cheap
        // jobs, so trace-wide percentiles say nothing about the cache —
        // the cold-vs-warm comparison that matters is on the job the
        // cache actually amortises.
        let mut cold_ns: Vec<u64> = Vec::new();
        let mut atpg_cold_ns = 0u64;
        let mut misses = 0u64;
        for config in &trace {
            let t = Instant::now();
            let (status, body) = post_job(addr, config, &netlist);
            let elapsed = t.elapsed().as_nanos() as u64;
            cold_ns.push(elapsed);
            if config.contains("\"kind\":\"atpg\"") {
                atpg_cold_ns = elapsed;
            }
            assert!(status.contains("200"), "populate {config}: {status}");
            assert!(has_result(&body), "populate {config}: no result in {body}");
            assert!(saw_hit(&body, false), "populate {config} unexpectedly hit");
            misses += 1;
        }

        // Phase 2: concurrent replay. Everything hits.
        let t_replay = Instant::now();
        let per_client: Vec<(Vec<u64>, Vec<u64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let trace = &trace;
                    let netlist = &netlist;
                    scope.spawn(move || {
                        let mut lat = Vec::new();
                        let mut atpg_lat = Vec::new();
                        let mut hits = 0u64;
                        for _ in 0..replays {
                            for config in trace {
                                let t = Instant::now();
                                let (status, body) = post_job(addr, config, netlist);
                                let elapsed = t.elapsed().as_nanos() as u64;
                                lat.push(elapsed);
                                if config.contains("\"kind\":\"atpg\"") {
                                    atpg_lat.push(elapsed);
                                }
                                assert!(status.contains("200"), "replay {config}: {status}");
                                assert!(saw_hit(&body, true), "replay {config} missed: {body}");
                                hits += 1;
                            }
                        }
                        (lat, atpg_lat, hits)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        let replay_wall = t_replay.elapsed();
        let mut warm_ns: Vec<u64> = per_client
            .iter()
            .flat_map(|(l, _, _)| l.iter().copied())
            .collect();
        let mut atpg_warm_ns: Vec<u64> = per_client
            .iter()
            .flat_map(|(_, a, _)| a.iter().copied())
            .collect();
        let hits: u64 = per_client.iter().map(|(_, _, h)| h).sum();
        server.shutdown();

        // Phase 3: shed. One worker, no queue, pinned by a cold job.
        let mut shed_server = JobServer::start(
            "127.0.0.1:0",
            ServeOptions {
                workers: 1,
                queue_depth: 0,
                ..ServeOptions::default()
            },
        )
        .expect("shed server starts");
        let shed_addr = shed_server.addr();
        let occupant = {
            let netlist = netlist.clone();
            std::thread::spawn(move || {
                post_job(shed_addr, r#"{"kind":"atpg","fill_seed":99}"#, &netlist)
            })
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if http_get(shed_addr, "/stats.json").contains("\"jobs_running\":1") {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut shed_429 = 0u64;
        let mut metrics_ok = true;
        for _ in 0..8 {
            let (status, _) = post_job(shed_addr, r#"{"kind":"netlist"}"#, &netlist);
            if status.contains("429") {
                shed_429 += 1;
            }
            metrics_ok &= http_get(shed_addr, "/metrics").contains("200 OK");
        }
        let (occ_status, _) = occupant.join().expect("occupant");
        assert!(occ_status.contains("200"), "occupant failed: {occ_status}");
        shed_server.shutdown();

        cold_ns.sort_unstable();
        warm_ns.sort_unstable();
        atpg_warm_ns.sort_unstable();
        let total_jobs = misses + hits;
        report
            .section("serve.load")
            .u64("jobs", total_jobs)
            .u64("clients", clients as u64)
            .u64("replays", replays as u64)
            .f64(
                "replay_jobs_per_sec",
                hits as f64 / replay_wall.as_secs_f64().max(1e-9),
            )
            .u64("cold_p50_ns", pct(&cold_ns, 50.0))
            .u64("cold_p90_ns", pct(&cold_ns, 90.0))
            .u64("warm_p50_ns", pct(&warm_ns, 50.0))
            .u64("warm_p99_ns", pct(&warm_ns, 99.0))
            .u64("atpg_cold_ns", atpg_cold_ns)
            .u64("atpg_warm_p50_ns", pct(&atpg_warm_ns, 50.0))
            .u64("shed_429", shed_429)
            .u64("shed_probes", 8)
            .u64("metrics_scrapeable", u64::from(metrics_ok));
        report
            .section("serve.cache")
            .u64("hits", hits)
            .u64("misses", misses)
            .f64("hit_rate", hits as f64 / total_jobs as f64)
            // The cache speedup is measured on the ATPG job — the one
            // the result cache actually amortises; trace-wide p50s are
            // dominated by jobs that were already cheap. The "…speedup"
            // suffix keeps this wall-clock row informational while the
            // counts above stay exactly gated.
            .f64(
                "cold_over_warm_speedup",
                atpg_cold_ns as f64 / pct(&atpg_warm_ns, 50.0).max(1) as f64,
            );
    });

    eprintln!("{}", report.render_text());
    rescue_bench::obs_finish(&obs, &mut report);
    rescue_bench::write_metrics_json(&obs, &report, None);
}
