//! Static DFT lint gate over the model netlists (`crates/rescue-lint`).
//!
//! ```text
//! lint [--quick] [--json PATH] [--fail-on SEV] [--threads N]
//! ```
//!
//! Lints the baseline and Rescue pipeline netlists, pre-scan and
//! post-scan (four designs total), prints a per-design summary, and
//! writes the `lint.*` counters to `BENCH_metrics.json`.
//!
//! * `--quick` lints the reduced-size model (CI uses this).
//! * `--json PATH` additionally writes the full diagnostic reports —
//!   every finding plus per-net SCOAP aggregates per ICI component —
//!   as a JSON array, one document per design.
//! * `--fail-on SEV` (`error`|`warning`|`info`, default `error`) sets
//!   the gate: any diagnostic at or above SEV exits 1. The paper's
//!   claim that the model netlists are structurally testable is
//!   enforced statically by CI running `--fail-on error`.

use rescue_core::model::ModelParams;
use rescue_lint::Severity;
use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    rescue_obs::global().set_enabled(true);
    let quick = rescue_bench::quick_mode();
    let json_path = rescue_bench::arg_str("--json");
    if let Some(path) = &json_path {
        rescue_bench::probe_output_file(path);
    }
    let fail_on = match rescue_bench::arg_str("--fail-on") {
        None => Severity::Error,
        Some(s) => match Severity::of_name(&s) {
            Ok(sev) => sev,
            Err(e) => {
                eprintln!("error: --fail-on: {e}");
                std::process::exit(2);
            }
        },
    };
    let params = if quick {
        ModelParams::tiny()
    } else {
        ModelParams::paper()
    };

    let mut report = Report::new("lint");
    let designs = rescue_bench::lint_report(&mut report, &params);

    for (label, lr) in &designs {
        print!("{}", lr.render_text(label, 50));
        if let Some(s) = &lr.scoap {
            println!(
                "  scoap: co_mean {:.2}, co_max {}, {} components",
                s.co_mean(),
                s.co_max(),
                s.per_component.len()
            );
        }
        if let Some(imp) = &lr.implication {
            println!(
                "  impl: {} literals, {} implications, {} constants, \
                 {}/{} reconvergent stems, {} redundant faults",
                imp.stats.literals,
                imp.stats.direct_implications,
                imp.stats.constant_literals,
                imp.stats.reconvergent_stems,
                imp.stats.stems,
                imp.redundant_faults.len()
            );
        }
    }

    if let Some(path) = &json_path {
        let docs: Vec<String> = designs
            .iter()
            .map(|(label, lr)| lr.to_json(label))
            .collect();
        let body = rescue_obs::json::array(&docs);
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: cannot write lint report {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote lint report {path} ({} bytes)", body.len());
    }

    rescue_bench::obs_finish(&obs, &mut report);
    let json = report.to_json();
    if let Err(e) = std::fs::write("BENCH_metrics.json", &json) {
        eprintln!("error: cannot write BENCH_metrics.json: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote BENCH_metrics.json ({} bytes)", json.len());

    let failing: Vec<&str> = designs
        .iter()
        .filter(|(_, lr)| !lr.passes(fail_on))
        .map(|(label, _)| label.as_str())
        .collect();
    if !failing.is_empty() {
        eprintln!(
            "error: lint gate failed at --fail-on {} for: {}",
            fail_on.name(),
            failing.join(", ")
        );
        std::process::exit(1);
    }
    println!("lint gate clean at --fail-on {}", fail_on.name());
}
