//! Regenerate Table 1 (system parameters).

fn main() {
    let rows = rescue_core::experiments::table1();
    print!("{}", rescue_core::render::table1_text(&rows));
}
