//! Regenerate Table 1 (system parameters).

use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    let rows = rescue_core::experiments::table1();
    print!("{}", rescue_core::render::table1_text(&rows));
    let mut report = Report::new("table1");
    report.section("table1").u64("rows", rows.len() as u64);
    rescue_bench::obs_finish(&obs, &mut report);
}
