//! Regenerate Figure 9 (both panels): relative yield-adjusted throughput
//! for no-redundancy, core sparing, and Rescue, across technology nodes
//! and core-growth rates.

use rescue_core::experiments::{fig9, Fig9Params};
use rescue_core::yield_model::Scenario;
use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    let n_instr = if rescue_bench::quick_mode() {
        5_000
    } else {
        30_000
    };
    let p = Fig9Params {
        n_instr,
        threads: rescue_bench::threads_arg(),
        ..Default::default()
    };
    let csv = rescue_bench::arg_flag("--csv");
    let mut report = Report::new("fig9");
    let a = fig9(&Scenario::pwp_stagnates_at_90nm(), &p);
    if csv {
        print!("{}", rescue_core::render::fig9_csv(&a));
    } else {
        print!(
            "{}",
            rescue_core::render::fig9_text("a: PWP stagnates at 90nm", &a)
        );
        println!();
    }
    report.section("panel_a").u64("points", a.len() as u64);
    let b = fig9(&Scenario::pwp_stagnates_at_65nm(), &p);
    if csv {
        print!("{}", rescue_core::render::fig9_csv(&b));
    } else {
        print!(
            "{}",
            rescue_core::render::fig9_text("b: PWP stagnates at 65nm", &b)
        );
    }
    report.section("panel_b").u64("points", b.len() as u64);
    rescue_bench::obs_finish(&obs, &mut report);
}
