//! Ablation study: turn the Rescue design choices off one at a time and
//! measure which ones carry the ≈4% IPC tax of Figure 8.

fn main() {
    let n = if rescue_bench::quick_mode() { 10_000 } else { 60_000 };
    let rows = rescue_core::experiments::ablation(n, 7);
    print!("{}", rescue_core::render::ablation_text(&rows));
}
