//! Ablation study: turn the Rescue design choices off one at a time and
//! measure which ones carry the ≈4% IPC tax of Figure 8.

use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    let n = if rescue_bench::quick_mode() {
        10_000
    } else {
        60_000
    };
    let rows = rescue_core::experiments::ablation(n, 7);
    print!("{}", rescue_core::render::ablation_text(&rows));
    let mut report = Report::new("ablation");
    report
        .section("ablation")
        .u64("variants", rows.len() as u64);
    rescue_bench::obs_finish(&obs, &mut report);
}
