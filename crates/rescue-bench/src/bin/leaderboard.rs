//! Render the bench-run history as a gate-evals/sec leaderboard.
//!
//! Usage: `leaderboard [BENCH_history.jsonl] [--md PATH] [--json PATH]`
//!
//! Reads the append-only history written by the bench binaries'
//! `--history` flag (default path `BENCH_history.jsonl`), prints the
//! markdown leaderboard — chronological throughput trajectory plus
//! per-kernel standings — to stdout, and optionally writes it as
//! markdown (`--md`) and/or a JSON document (`--json`). Exit codes:
//! 0 = rendered, 2 = usage error, missing/unreadable history, or a
//! history file with no valid records.

use rescue_bench::history::parse_history;
use rescue_bench::leaderboard::{render_json, render_markdown};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut md_out: Option<&str> = None;
    let mut json_out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--md" => {
                i += 1;
                md_out = Some(args.get(i).map(String::as_str).unwrap_or_else(|| {
                    usage("--md expects a path");
                }));
            }
            "--json" => {
                i += 1;
                json_out = Some(args.get(i).map(String::as_str).unwrap_or_else(|| {
                    usage("--json expects a path");
                }));
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag}")),
            p if path.is_none() => path = Some(p),
            _ => usage("expected at most one history path"),
        }
        i += 1;
    }
    let path = path.unwrap_or("BENCH_history.jsonl");

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read history {path}: {e}");
        std::process::exit(2);
    });
    let records = parse_history(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    if records.is_empty() {
        eprintln!("error: {path} contains no history records");
        std::process::exit(2);
    }

    let md = render_markdown(&records);
    print!("{md}");
    if let Some(p) = md_out {
        if let Err(e) = std::fs::write(p, &md) {
            eprintln!("error: cannot write {p}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote markdown leaderboard {p}");
    }
    if let Some(p) = json_out {
        if let Err(e) = std::fs::write(p, render_json(&records)) {
            eprintln!("error: cannot write {p}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote JSON leaderboard {p}");
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: leaderboard [BENCH_history.jsonl] [--md PATH] [--json PATH]");
    std::process::exit(2);
}
