//! Structurally compare two `BENCH_metrics.json` documents and exit
//! nonzero on regression — the CI gate against the committed
//! `BENCH_baseline.json`.
//!
//! Usage: `bench-diff <baseline.json> <current.json> [--all]
//! [--time-tolerance-pct P] [--stats-gate] [--noise-mads K]
//! [--noise-floor-pct P]`
//!
//! Deterministic counters (vector counts, fault classes, histogram
//! buckets, coverage endpoints) must match exactly; derived floats get a
//! 1e-9 relative band; wall-clock metrics are informational unless
//! `--time-tolerance-pct` makes them gating. Robust-stats metrics from
//! `--repeat N` runs are informational by default; `--stats-gate` fails
//! the run when a current median exceeds the baseline median by more
//! than `max(K·MAD, P%·median)` of the *baseline's* spread (one-sided —
//! improvements always pass). Exit codes: 0 = no regression, 1 =
//! regression, 2 = usage/IO/parse error.

use rescue_bench::diff::{diff, DiffConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut show_all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => show_all = true,
            "--time-tolerance-pct" => {
                i += 1;
                let v = args.get(i).and_then(|v| v.parse::<f64>().ok());
                match v {
                    Some(pct) if pct >= 0.0 => cfg.time_tolerance = Some(pct / 100.0),
                    _ => usage("--time-tolerance-pct expects a non-negative number"),
                }
            }
            "--stats-gate" => cfg.stats_gate = true,
            "--noise-mads" => {
                i += 1;
                let v = args.get(i).and_then(|v| v.parse::<f64>().ok());
                match v {
                    Some(k) if k >= 0.0 => cfg.noise_mads = k,
                    _ => usage("--noise-mads expects a non-negative number"),
                }
            }
            "--noise-floor-pct" => {
                i += 1;
                let v = args.get(i).and_then(|v| v.parse::<f64>().ok());
                match v {
                    Some(pct) if pct >= 0.0 => cfg.noise_floor_rel = pct / 100.0,
                    _ => usage("--noise-floor-pct expects a non-negative number"),
                }
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag}")),
            p => paths.push(p),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage("expected exactly two metrics documents");
    }

    let load = |path: &str| -> rescue_obs::json::JsonValue {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        rescue_obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(paths[0]);
    let current = load(paths[1]);

    let result = diff(&baseline, &current, &cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    print!("{}", result.render(show_all));
    if result.regressed() {
        eprintln!("regression detected: {} vs {}", paths[1], paths[0]);
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: bench-diff <baseline.json> <current.json> [--all] [--time-tolerance-pct P] \
         [--stats-gate] [--noise-mads K] [--noise-floor-pct P]"
    );
    std::process::exit(2);
}
