//! The §6.1 experiment: inject random detected faults into each pipeline
//! stage of the Rescue design and verify every one isolates to its
//! map-out group through conventional scan alone. Also runs the baseline
//! design to show the ambiguity Rescue eliminates.
//!
//! Flags: --quick (tiny model), --faults-per-stage N (default 1000, the
//! paper's count), --threads N (fault-simulation workers; results are
//! bit-identical for any value), --metrics, --trace-json <path>,
//! --trace-perfetto <path>, --coverage-csv / --coverage-json <path>
//! (coverage curves of the underlying ATPG runs, tagged by design),
//! --serve-metrics ADDR (live /metrics endpoint during the run), and
//! --progress-every N (JSONL progress frames in the trace sink).

use rescue_core::model::{ModelParams, Variant};
use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    let (params, per_stage) = if rescue_bench::quick_mode() {
        (
            ModelParams::tiny(),
            rescue_bench::arg_usize("--faults-per-stage", 50),
        )
    } else {
        (
            ModelParams::paper(),
            rescue_bench::arg_usize("--faults-per-stage", 1000),
        )
    };
    let threads = rescue_bench::threads_arg();
    let mut report = Report::new("isolation");
    let mut curves = Vec::new();
    for variant in [Variant::Rescue, Variant::Baseline] {
        let e = rescue_core::experiments::isolation_with_threads(
            &params, variant, per_stage, 42, threads,
        );
        print!("{}", rescue_core::render::isolation_text(&e));
        println!();
        let tag = format!("{variant:?}").to_lowercase();
        report
            .section(&tag)
            .u64("injected", e.total_injected() as u64)
            .u64("isolated", e.total_isolated() as u64);
        rescue_bench::coverage_report(&mut report, &tag, &e.coverage);
        curves.push((tag, e.coverage));
    }
    let tagged: Vec<(&str, &rescue_obs::CoverageCurve)> =
        curves.iter().map(|(t, c)| (t.as_str(), c)).collect();
    rescue_bench::coverage_outputs(&obs, &tagged);
    rescue_bench::obs_finish(&obs, &mut report);
}
