//! The §6.1 experiment: inject random detected faults into each pipeline
//! stage of the Rescue design and verify every one isolates to its
//! map-out group through conventional scan alone. Also runs the baseline
//! design to show the ambiguity Rescue eliminates.
//!
//! Flags: --quick (tiny model), --faults-per-stage N (default 1000, the
//! paper's count).

use rescue_core::model::{ModelParams, Variant};

fn main() {
    let (params, per_stage) = if rescue_bench::quick_mode() {
        (ModelParams::tiny(), rescue_bench::arg_usize("--faults-per-stage", 50))
    } else {
        (
            ModelParams::paper(),
            rescue_bench::arg_usize("--faults-per-stage", 1000),
        )
    };
    for variant in [Variant::Rescue, Variant::Baseline] {
        let e = rescue_core::experiments::isolation(&params, variant, per_stage, 42);
        print!("{}", rescue_core::render::isolation_text(&e));
        println!();
    }
}
