//! The §6.1 experiment: inject random detected faults into each pipeline
//! stage of the Rescue design and verify every one isolates to its
//! map-out group through conventional scan alone. Also runs the baseline
//! design to show the ambiguity Rescue eliminates.
//!
//! Flags: --quick (tiny model), --faults-per-stage N (default 1000, the
//! paper's count), --metrics, --trace-json <path>.

use rescue_core::model::{ModelParams, Variant};
use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    let (params, per_stage) = if rescue_bench::quick_mode() {
        (
            ModelParams::tiny(),
            rescue_bench::arg_usize("--faults-per-stage", 50),
        )
    } else {
        (
            ModelParams::paper(),
            rescue_bench::arg_usize("--faults-per-stage", 1000),
        )
    };
    let mut report = Report::new("isolation");
    for variant in [Variant::Rescue, Variant::Baseline] {
        let e = rescue_core::experiments::isolation(&params, variant, per_stage, 42);
        print!("{}", rescue_core::render::isolation_text(&e));
        println!();
        report
            .section(&format!("{variant:?}").to_lowercase())
            .u64("injected", e.total_injected() as u64)
            .u64("isolated", e.total_isolated() as u64);
    }
    rescue_bench::obs_finish(&obs, &mut report);
}
