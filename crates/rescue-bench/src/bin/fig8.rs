//! Regenerate Figure 8: per-benchmark IPC for the baseline and Rescue
//! designs across the 23 SPEC2000 workload profiles.

use rescue_core::experiments::{fig8, Fig8Params};

fn main() {
    let p = Fig8Params {
        n_instr: if rescue_bench::quick_mode() { 10_000 } else { 100_000 },
        ..Default::default()
    };
    let rows = fig8(&p);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", rescue_core::render::fig8_csv(&rows));
    } else {
        print!("{}", rescue_core::render::fig8_text(&rows));
    }
}
