//! Regenerate Figure 8: per-benchmark IPC for the baseline and Rescue
//! designs across the 23 SPEC2000 workload profiles.

use rescue_core::experiments::{fig8, Fig8Params};
use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    let p = Fig8Params {
        n_instr: if rescue_bench::quick_mode() {
            10_000
        } else {
            100_000
        },
        threads: rescue_bench::threads_arg(),
        ..Default::default()
    };
    let rows = fig8(&p);
    if rescue_bench::arg_flag("--csv") {
        print!("{}", rescue_core::render::fig8_csv(&rows));
    } else {
        print!("{}", rescue_core::render::fig8_text(&rows));
    }
    let mut report = Report::new("fig8");
    for row in &rows {
        rescue_bench::sim_report(
            &mut report,
            &format!("{}.baseline", row.name),
            &row.baseline_result,
        );
        rescue_bench::sim_report(
            &mut report,
            &format!("{}.rescue", row.name),
            &row.rescue_result,
        );
    }
    rescue_bench::obs_finish(&obs, &mut report);
}
