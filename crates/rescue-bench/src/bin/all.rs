//! Regenerate every table and figure in sequence (EXPERIMENTS.md source).
//!
//! Always writes the combined machine-readable report to
//! `BENCH_metrics.json` in the current directory; `--metrics` also
//! renders it to stderr and `--trace-json <path>` streams the spans.
//! `--threads N` picks the fault-simulation worker count (results are
//! bit-identical for any value); the report ends with the `fsim_kernel`
//! microbench section, its 1-vs-N thread scaling row, and the
//! `obs.overhead` self-benchmark (instrumented vs uninstrumented
//! kernel throughput). `--serve-metrics ADDR` exposes live progress at
//! `http://ADDR/metrics` while the run is in flight, and
//! `--progress-every N` mirrors the same counters as JSONL progress
//! frames into the trace sink.

use rescue_core::experiments::{self, Fig8Params, Fig9Params};
use rescue_core::model::{ModelParams, Variant};
use rescue_core::render;
use rescue_core::yield_model::Scenario;
use rescue_obs::Report;

fn main() {
    let obs = rescue_bench::obs_init();
    // The JSON artifact always carries span timings, so collect them
    // even without --metrics.
    rescue_obs::global().set_enabled(true);
    let quick = rescue_bench::quick_mode();
    let threads = rescue_bench::threads_arg();
    let params = if quick {
        ModelParams::tiny()
    } else {
        ModelParams::paper()
    };
    let mut report = Report::new("all");

    let t1 = experiments::table1();
    print!("{}", render::table1_text(&t1));
    println!();
    report.section("table1").u64("rows", t1.len() as u64);

    let (bt, ra) = experiments::table2();
    print!("{}", render::table2_text(bt, &ra));
    println!();
    report.section("table2").f64("baseline_total_mm2", bt);

    let t3 = experiments::table3_with_threads(&params, threads);
    print!("{}", render::table3_text(&t3));
    println!();
    rescue_bench::atpg_report(&mut report, "table3.baseline", &t3.baseline_metrics);
    rescue_bench::atpg_report(&mut report, "table3.rescue", &t3.rescue_metrics);
    for (prefix, stages) in [
        ("table3.baseline", &t3.baseline_stage_coverage),
        ("table3.rescue", &t3.rescue_stage_coverage),
    ] {
        let sec = report.section(&format!("{prefix}.coverage.stages"));
        for (stage, n) in stages {
            sec.u64(stage, *n);
        }
    }
    rescue_bench::coverage_outputs(
        &obs,
        &[
            ("baseline", &t3.baseline_metrics.coverage),
            ("rescue", &t3.rescue_metrics.coverage),
        ],
    );

    let per_stage = if quick { 50 } else { 1000 };
    for variant in [Variant::Rescue, Variant::Baseline] {
        let e = experiments::isolation_with_threads(&params, variant, per_stage, 42, threads);
        print!("{}", render::isolation_text(&e));
        println!();
        let tag = format!("{variant:?}").to_lowercase();
        report
            .section(&format!("isolation.{tag}"))
            .u64("injected", e.total_injected() as u64)
            .u64("isolated", e.total_isolated() as u64);
    }

    let f8 = experiments::fig8(&Fig8Params {
        n_instr: if quick { 10_000 } else { 100_000 },
        threads,
        ..Default::default()
    });
    print!("{}", render::fig8_text(&f8));
    println!();
    for row in &f8 {
        rescue_bench::sim_report(
            &mut report,
            &format!("fig8.{}.baseline", row.name),
            &row.baseline_result,
        );
        rescue_bench::sim_report(
            &mut report,
            &format!("fig8.{}.rescue", row.name),
            &row.rescue_result,
        );
    }

    let p9 = Fig9Params {
        n_instr: if quick { 5_000 } else { 30_000 },
        threads,
        ..Default::default()
    };
    let a = experiments::fig9(&Scenario::pwp_stagnates_at_90nm(), &p9);
    print!("{}", render::fig9_text("a: PWP stagnates at 90nm", &a));
    println!();
    report.section("fig9.panel_a").u64("points", a.len() as u64);
    let b = experiments::fig9(&Scenario::pwp_stagnates_at_65nm(), &p9);
    print!("{}", render::fig9_text("b: PWP stagnates at 65nm", &b));
    report.section("fig9.panel_b").u64("points", b.len() as u64);

    // Static DFT lint over both variants (pre- and post-scan): the
    // diagnostic counts gate exactly in bench-diff, the SCOAP
    // aggregates ride along as informational testability telemetry.
    let lint_designs = rescue_bench::lint_report(&mut report, &params);
    for (label, lr) in &lint_designs {
        println!(
            "lint {label}: {} errors, {} warnings, {} infos",
            lr.count(rescue_lint::Severity::Error),
            lr.count(rescue_lint::Severity::Warning),
            lr.count(rescue_lint::Severity::Info),
        );
    }
    println!();

    // Event-kernel microbench + 1-vs-N thread scaling row, tracked in
    // BENCH_metrics.json across snapshots.
    rescue_bench::fsim_kernel_report(&mut report, &params, threads);

    // How much does live telemetry cost? Sweep the same faults with
    // the hub on and off; the ratio lands in BENCH_metrics.json as
    // informational `obs.overhead.*` rows.
    rescue_bench::obs_overhead_report(&mut report, &params);

    rescue_bench::obs_finish(&obs, &mut report);
    let json = report.to_json();
    if let Err(e) = std::fs::write("BENCH_metrics.json", &json) {
        eprintln!("error: cannot write BENCH_metrics.json: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote BENCH_metrics.json ({} bytes)", json.len());
}
