//! Regenerate every table and figure in sequence (EXPERIMENTS.md source).
//!
//! Always writes the combined machine-readable report to
//! `BENCH_metrics.json` in the current directory (`--metrics-json PATH`
//! overrides the destination); `--metrics` also renders it — plus the
//! phase-attribution flame summary — to stderr and `--trace-json
//! <path>` streams the spans. `--threads N` picks the fault-simulation
//! worker count (results are bit-identical for any value); the report
//! ends with the `fsim_kernel` microbench section, its 1-vs-N thread
//! scaling row, and the `obs.overhead` self-benchmark (instrumented vs
//! uninstrumented kernel throughput). `--repeat N`/`--warmup K` run the
//! whole suite K+N times and fold varying metrics into
//! median/MAD/min/IQR statistics; `--history PATH` appends one
//! throughput record per run to the append-only history feeding the
//! `leaderboard` binary. `--serve-metrics ADDR` exposes live progress
//! at `http://ADDR/metrics` while the run is in flight, and
//! `--progress-every N` mirrors the same counters as JSONL progress
//! frames into the trace sink.

use rescue_core::experiments::{self, Fig8Params, Fig9Params};
use rescue_core::model::{ModelParams, Variant};
use rescue_core::render;
use rescue_core::yield_model::Scenario;

fn main() {
    let obs = rescue_bench::obs_init();
    // The JSON artifact always carries span timings, so collect them
    // even without --metrics.
    rescue_obs::global().set_enabled(true);
    let quick = rescue_bench::quick_mode();
    let threads = rescue_bench::threads_arg();
    let params = if quick {
        ModelParams::tiny()
    } else {
        ModelParams::paper()
    };

    let mut report = rescue_bench::run_repeated("all", &obs, |report, first| {
        let t1 = experiments::table1();
        if first {
            print!("{}", render::table1_text(&t1));
            println!();
        }
        report.section("table1").u64("rows", t1.len() as u64);

        let (bt, ra) = experiments::table2();
        if first {
            print!("{}", render::table2_text(bt, &ra));
            println!();
        }
        report.section("table2").f64("baseline_total_mm2", bt);

        let t3 = experiments::table3_with_threads(&params, threads);
        if first {
            print!("{}", render::table3_text(&t3));
            println!();
        }
        rescue_bench::atpg_report(report, "table3.baseline", &t3.baseline_metrics);
        rescue_bench::atpg_report(report, "table3.rescue", &t3.rescue_metrics);
        for (prefix, stages) in [
            ("table3.baseline", &t3.baseline_stage_coverage),
            ("table3.rescue", &t3.rescue_stage_coverage),
        ] {
            let sec = report.section(&format!("{prefix}.coverage.stages"));
            for (stage, n) in stages {
                sec.u64(stage, *n);
            }
        }
        if first {
            rescue_bench::coverage_outputs(
                &obs,
                &[
                    ("baseline", &t3.baseline_metrics.coverage),
                    ("rescue", &t3.rescue_metrics.coverage),
                ],
            );
        }

        let per_stage = if quick { 50 } else { 1000 };
        for variant in [Variant::Rescue, Variant::Baseline] {
            let e = experiments::isolation_with_threads(&params, variant, per_stage, 42, threads);
            if first {
                print!("{}", render::isolation_text(&e));
                println!();
            }
            let tag = format!("{variant:?}").to_lowercase();
            report
                .section(&format!("isolation.{tag}"))
                .u64("injected", e.total_injected() as u64)
                .u64("isolated", e.total_isolated() as u64);
        }

        let f8 = experiments::fig8(&Fig8Params {
            n_instr: if quick { 10_000 } else { 100_000 },
            threads,
            ..Default::default()
        });
        if first {
            print!("{}", render::fig8_text(&f8));
            println!();
        }
        for row in &f8 {
            rescue_bench::sim_report(
                report,
                &format!("fig8.{}.baseline", row.name),
                &row.baseline_result,
            );
            rescue_bench::sim_report(
                report,
                &format!("fig8.{}.rescue", row.name),
                &row.rescue_result,
            );
        }

        let p9 = Fig9Params {
            n_instr: if quick { 5_000 } else { 30_000 },
            threads,
            ..Default::default()
        };
        let a = experiments::fig9(&Scenario::pwp_stagnates_at_90nm(), &p9);
        if first {
            print!("{}", render::fig9_text("a: PWP stagnates at 90nm", &a));
            println!();
        }
        report.section("fig9.panel_a").u64("points", a.len() as u64);
        let b = experiments::fig9(&Scenario::pwp_stagnates_at_65nm(), &p9);
        if first {
            print!("{}", render::fig9_text("b: PWP stagnates at 65nm", &b));
            println!();
        }
        report.section("fig9.panel_b").u64("points", b.len() as u64);

        // Static DFT lint over both variants (pre- and post-scan): the
        // diagnostic counts gate exactly in bench-diff, the SCOAP
        // aggregates ride along as informational testability telemetry.
        let lint_designs = rescue_bench::lint_report(report, &params);
        if first {
            for (label, lr) in &lint_designs {
                println!(
                    "lint {label}: {} errors, {} warnings, {} infos",
                    lr.count(rescue_lint::Severity::Error),
                    lr.count(rescue_lint::Severity::Warning),
                    lr.count(rescue_lint::Severity::Info),
                );
            }
            println!();
        }

        // Static-implication ATPG pre-pass: proven-redundant counts and
        // PODEM calls saved gate exactly; the `identical` row pins the
        // byte-identity contract (pre-pass on vs off) in bench-diff.
        rescue_bench::prepass_report(report, &params);

        // Event-kernel microbench + 1-vs-N thread scaling row, tracked
        // in BENCH_metrics.json across snapshots.
        rescue_bench::fsim_kernel_report(report, &params, threads);

        // How much does live telemetry + the phase profiler cost? Sweep
        // the same faults with both on and off; the ratio lands in
        // BENCH_metrics.json as informational `obs.overhead.*` rows.
        rescue_bench::obs_overhead_report(report, &params);
    });

    rescue_bench::obs_finish(&obs, &mut report);
    rescue_bench::write_metrics_json(&obs, &report, Some("BENCH_metrics.json"));
    rescue_bench::history_append(&obs, &report, threads);
}
