//! Regenerate every table and figure in sequence (EXPERIMENTS.md source).

use rescue_core::experiments::{self, Fig8Params, Fig9Params};
use rescue_core::model::{ModelParams, Variant};
use rescue_core::render;
use rescue_core::yield_model::Scenario;

fn main() {
    let quick = rescue_bench::quick_mode();
    let params = if quick { ModelParams::tiny() } else { ModelParams::paper() };

    print!("{}", render::table1_text(&experiments::table1()));
    println!();
    let (bt, ra) = experiments::table2();
    print!("{}", render::table2_text(bt, &ra));
    println!();
    let t3 = experiments::table3(&params);
    print!("{}", render::table3_text(&t3));
    println!();
    let per_stage = if quick { 50 } else { 1000 };
    for variant in [Variant::Rescue, Variant::Baseline] {
        let e = experiments::isolation(&params, variant, per_stage, 42);
        print!("{}", render::isolation_text(&e));
        println!();
    }
    let f8 = experiments::fig8(&Fig8Params {
        n_instr: if quick { 10_000 } else { 100_000 },
        ..Default::default()
    });
    print!("{}", render::fig8_text(&f8));
    println!();
    let p9 = Fig9Params {
        n_instr: if quick { 5_000 } else { 30_000 },
        ..Default::default()
    };
    let a = experiments::fig9(&Scenario::pwp_stagnates_at_90nm(), &p9);
    print!("{}", render::fig9_text("a: PWP stagnates at 90nm", &a));
    println!();
    let b = experiments::fig9(&Scenario::pwp_stagnates_at_65nm(), &p9);
    print!("{}", render::fig9_text("b: PWP stagnates at 65nm", &b));
}
