//! Append-only run history: one JSONL record per bench run (git SHA,
//! UTC date, mode, and the median of every tracked performance metric),
//! feeding the `leaderboard` binary's gate-evals/sec trajectory.
//!
//! The file (`BENCH_history.jsonl` by convention, written via the
//! `--history <path>` flag) is append-only so records from different
//! commits and machines accumulate; [`parse_history`] tolerates a torn
//! final line (a run killed mid-append) but errors on corruption
//! anywhere else.

use rescue_obs::json::{self, JsonObj, JsonValue};
use rescue_obs::report::{Report, Value};
use std::path::{Path, PathBuf};

/// One historical bench run.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRecord {
    /// Git commit SHA at run time (`"unknown"` outside a checkout).
    pub sha: String,
    /// UTC calendar date, `YYYY-MM-DD`.
    pub date: String,
    /// Seconds since the Unix epoch at record time.
    pub unix_secs: u64,
    /// Report title (the binary name: `all`, `table3`, `fsim_kernel`).
    pub title: String,
    /// Fault-simulation worker count the run used.
    pub threads: u64,
    /// Whether the run was `--quick`.
    pub quick: bool,
    /// Tracked metric medians, name → value (name-sorted).
    pub metrics: Vec<(String, f64)>,
}

/// The `(section, key)` pairs a history record tracks, with the dotted
/// name they are recorded under. Leaderboard standings are driven by
/// the `fsim_kernel.*_evals_per_sec` entries.
const TRACKED: &[(&str, &str, &str)] = &[
    (
        "fsim_kernel",
        "bucket_evals_per_sec",
        "bucket_evals_per_sec",
    ),
    ("fsim_kernel", "heap_evals_per_sec", "heap_evals_per_sec"),
    ("fsim_kernel", "ppsfp_evals_per_sec", "ppsfp_evals_per_sec"),
    ("fsim_kernel", "kernel_speedup", "kernel_speedup"),
    ("fsim_kernel", "ppsfp_speedup", "ppsfp_speedup"),
    ("fsim_kernel", "gate_evals_bucket", "gate_evals_bucket"),
    (
        "fsim_kernel.bucket.w64",
        "evals_per_sec",
        "bucket_w64_evals_per_sec",
    ),
    (
        "fsim_kernel.bucket.w256",
        "evals_per_sec",
        "bucket_w256_evals_per_sec",
    ),
    (
        "fsim_kernel.bucket.w512",
        "evals_per_sec",
        "bucket_w512_evals_per_sec",
    ),
    (
        "fsim_kernel.heap.w64",
        "evals_per_sec",
        "heap_w64_evals_per_sec",
    ),
    (
        "fsim_kernel.heap.w256",
        "evals_per_sec",
        "heap_w256_evals_per_sec",
    ),
    (
        "fsim_kernel.heap.w512",
        "evals_per_sec",
        "heap_w512_evals_per_sec",
    ),
    (
        "fsim_kernel.ppsfp.w64",
        "evals_per_sec",
        "ppsfp_w64_evals_per_sec",
    ),
    (
        "fsim_kernel.ppsfp.w256",
        "evals_per_sec",
        "ppsfp_w256_evals_per_sec",
    ),
    (
        "fsim_kernel.ppsfp.w512",
        "evals_per_sec",
        "ppsfp_w512_evals_per_sec",
    ),
    ("fsim_kernel.parallel", "atpg_1t_ms", "atpg_1t_ms"),
    ("fsim_kernel.parallel", "atpg_nt_ms", "atpg_nt_ms"),
    ("obs.overhead", "overhead_pct", "obs_overhead_pct"),
    (
        "obs.overhead",
        "profiler_overhead_pct",
        "profiler_overhead_pct",
    ),
];

/// Numeric view of a report value: scalars directly, stats objects by
/// their median.
fn metric_value(v: &Value) -> Option<f64> {
    match v {
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        Value::F64(x) => Some(*x),
        Value::Stats(st) => Some(st.median),
        Value::Str(_) | Value::Hist(_) => None,
    }
}

impl HistoryRecord {
    /// Build a record from a finished report. `unix_secs` comes from
    /// the system clock ([`std::time::SystemTime`]); the SHA from the
    /// enclosing git checkout.
    pub fn from_report(report: &Report, threads: usize, quick: bool) -> HistoryRecord {
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let mut metrics: Vec<(String, f64)> = TRACKED
            .iter()
            .filter_map(|(sec, key, name)| {
                report
                    .get(sec, key)
                    .and_then(metric_value)
                    .map(|v| ((*name).to_owned(), v))
            })
            .collect();
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        HistoryRecord {
            sha: git_head_sha(Path::new(".")).unwrap_or_else(|| "unknown".to_owned()),
            date: utc_date(unix_secs),
            unix_secs,
            title: report.title.clone(),
            threads: threads as u64,
            quick,
            metrics,
        }
    }

    /// Render as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut metrics = JsonObj::new();
        for (k, v) in &self.metrics {
            metrics.f64(k, *v);
        }
        let mut o = JsonObj::new();
        o.str("sha", &self.sha)
            .str("date", &self.date)
            .u64("unix_secs", self.unix_secs)
            .str("title", &self.title)
            .u64("threads", self.threads)
            .bool("quick", self.quick)
            .raw("metrics", &metrics.finish());
        o.finish()
    }

    fn of_json(v: &JsonValue) -> Result<HistoryRecord, String> {
        let get_str = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let get_u64 = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_int)
                .map(|i| i as u64)
                .ok_or_else(|| format!("missing integer field {k:?}"))
        };
        let quick = matches!(v.get("quick"), Some(JsonValue::Bool(true)));
        let mut metrics: Vec<(String, f64)> = match v.get("metrics") {
            Some(JsonValue::Obj(kvs)) => kvs
                .iter()
                .filter_map(|(k, mv)| mv.as_f64().map(|x| (k.clone(), x)))
                .collect(),
            _ => return Err("missing object field \"metrics\"".to_owned()),
        };
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(HistoryRecord {
            sha: get_str("sha")?,
            date: get_str("date")?,
            unix_secs: get_u64("unix_secs")?,
            title: get_str("title")?,
            threads: get_u64("threads")?,
            quick,
            metrics,
        })
    }

    /// The tracked metric named `name`, if recorded.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Parse a history document (JSONL). Blank lines are skipped; a JSON
/// parse failure on the final non-blank line is treated as a torn
/// append and dropped; any other malformed line is an error naming the
/// line number.
pub fn parse_history(jsonl: &str) -> Result<Vec<HistoryRecord>, String> {
    let lines: Vec<(usize, &str)> = jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut out = Vec::with_capacity(lines.len());
    for (pos, &(lineno, line)) in lines.iter().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(_) if pos + 1 == lines.len() => break, // torn final append
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        };
        out.push(HistoryRecord::of_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// Append one record to `path` (created if missing).
pub fn append_record(path: &str, rec: &HistoryRecord) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", rec.to_json())
}

/// Resolve the current git HEAD commit SHA by reading `.git` directly
/// (no `git` subprocess): follows `HEAD` → `refs/...` → `packed-refs`.
/// Searches upward from `start` a few levels, returning `None` outside
/// a checkout.
pub fn git_head_sha(start: &Path) -> Option<String> {
    let mut dir: PathBuf = start.canonicalize().ok()?;
    for _ in 0..6 {
        let git = dir.join(".git");
        if git.is_dir() {
            return sha_of_git_dir(&git);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

fn sha_of_git_dir(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let refname = refname.trim();
        if let Ok(sha) = std::fs::read_to_string(git.join(refname)) {
            return valid_sha(sha.trim());
        }
        // Ref may only exist packed.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(sha) = line.strip_suffix(refname) {
                if let Some(s) = valid_sha(sha.trim()) {
                    return Some(s);
                }
            }
        }
        return None;
    }
    valid_sha(head) // detached HEAD
}

fn valid_sha(s: &str) -> Option<String> {
    (s.len() >= 7 && s.bytes().all(|b| b.is_ascii_hexdigit())).then(|| s.to_owned())
}

/// UTC calendar date (`YYYY-MM-DD`) for a Unix timestamp, via the
/// days-from-civil inverse (Howard Hinnant's algorithm) — no time-zone
/// tables, which is exact for UTC.
pub fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sha: &str, secs: u64, bucket: f64) -> HistoryRecord {
        HistoryRecord {
            sha: sha.to_owned(),
            date: utc_date(secs),
            unix_secs: secs,
            title: "all".to_owned(),
            threads: 4,
            quick: true,
            metrics: vec![
                ("bucket_evals_per_sec".to_owned(), bucket),
                ("heap_evals_per_sec".to_owned(), bucket / 2.0),
            ],
        }
    }

    #[test]
    fn utc_date_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_399), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        assert_eq!(utc_date(1_000_000_000), "2001-09-09");
        assert_eq!(utc_date(1_754_611_200), "2025-08-08");
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = rec("abc1234", 1_000_000_000, 5e6);
        let parsed = parse_history(&format!("{}\n", r.to_json())).unwrap();
        assert_eq!(parsed, vec![r]);
    }

    #[test]
    fn parse_tolerates_torn_final_line_only() {
        let good = rec("abc1234", 100, 1.0).to_json();
        let doc = format!("{good}\n{{\"sha\":\"tor");
        let parsed = parse_history(&doc).unwrap();
        assert_eq!(parsed.len(), 1);
        // A torn line that is NOT final is corruption.
        let doc = format!("{{\"sha\":\"tor\n{good}\n");
        let err = parse_history(&doc).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // A semantically invalid record errors even at the end.
        let doc = format!("{good}\n{{\"sha\":\"x\"}}");
        assert!(parse_history(&doc).is_err());
    }

    #[test]
    fn from_report_extracts_stats_medians() {
        use rescue_obs::report::RobustStats;
        let mut report = Report::new("fsim_kernel");
        report
            .section("fsim_kernel")
            .u64("gate_evals_bucket", 1000)
            .stats(
                "bucket_evals_per_sec",
                RobustStats::from_samples(&[1e6, 2e6, 3e6]),
            );
        let r = HistoryRecord::from_report(&report, 2, false);
        assert_eq!(r.metric("bucket_evals_per_sec"), Some(2e6));
        assert_eq!(r.metric("gate_evals_bucket"), Some(1000.0));
        assert_eq!(r.threads, 2);
        assert!(!r.quick);
        assert_eq!(r.title, "fsim_kernel");
    }

    #[test]
    fn git_sha_resolves_in_this_repo() {
        // The test runs inside the repo checkout; the SHA must resolve
        // and look like hex. (Falls back cleanly outside a checkout.)
        if let Some(sha) = git_head_sha(Path::new(env!("CARGO_MANIFEST_DIR"))) {
            assert!(sha.len() >= 7, "{sha}");
            assert!(sha.bytes().all(|b| b.is_ascii_hexdigit()), "{sha}");
        }
    }
}
