//! Shared helpers for the experiment-regeneration binaries.
//!
//! Each binary regenerates one table or figure of the paper:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1, system parameters |
//! | `table2` | Table 2, total and relative areas |
//! | `table3` | Table 3, scan chain data (full ATPG on both designs) |
//! | `isolation` | §6.1 fault-isolation experiment |
//! | `fig8` | Figure 8, per-benchmark IPC degradation |
//! | `fig9` | Figure 9 (both panels), relative YAT vs technology |
//! | `all` | everything above in sequence |
//!
//! Every binary accepts `--quick` to run a reduced-size configuration
//! suitable for smoke testing, and the ATPG/simulation binaries accept
//! `--threads N` to pick the fault-simulation worker count (default:
//! `RESCUE_THREADS`, then available parallelism — results are
//! bit-identical for any value), plus the observability flags:
//!
//! * `--metrics` — print an engine-counter and span-timing report to
//!   stderr when the run finishes,
//! * `--trace-json <path>` — stream spans/events as JSON Lines to
//!   `path` while the run executes,
//! * `--trace-perfetto <path>` — write a Chrome trace-event JSON
//!   document at exit, loadable in `chrome://tracing` /
//!   [ui.perfetto.dev](https://ui.perfetto.dev),
//! * `--coverage-csv <path>` / `--coverage-json <path>` — (binaries
//!   that run ATPG: `table3`, `isolation`, `all`) write the per-vector
//!   coverage curve with per-component attribution,
//! * `--serve-metrics <addr>` — start the live telemetry endpoint
//!   ([`rescue_obs::TelemetryServer`]) on `addr` (port `0` = ephemeral;
//!   the bound address is printed to stderr) serving `GET /metrics`
//!   (Prometheus text exposition), `GET /snapshot.json`, and
//!   `GET /healthz` for the whole run,
//! * `--progress-every <n>` — enable live progress collection and emit
//!   one progress frame per `n` loop units (ATPG targets, fuzz cases)
//!   to the trace sink / Perfetto counter tracks when tracing is armed.
//!
//! Every output path is probed at argument-parse time: an unwritable
//! destination aborts with exit code 2 *before* the run, not after it.
//!
//! The `bench-diff` binary is the regression gate over the
//! `BENCH_metrics.json` artifact; see [`diff`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod history;
pub mod leaderboard;
pub mod stats;

use rescue_core::atpg::AtpgMetrics;
use rescue_core::pipesim::{SimResult, IPC_WINDOW_CYCLES};
use rescue_obs::{CoverageCurve, Report};

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    arg_flag("--quick")
}

/// Whether the bare flag `name` was passed on the command line.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `name` on the command line, if present. Exits
/// with an error when the flag is last (no value to take).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            match args.get(i + 1) {
                Some(v) => return Some(v.clone()),
                None => {
                    eprintln!("error: {name} requires a value");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse `name N` (e.g. `--faults-per-stage 100`), defaulting to `dflt`
/// when absent. A malformed value is an error, not a silent fallback.
pub fn arg_usize(name: &str, dflt: usize) -> usize {
    match arg_str(name) {
        None => dflt,
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: {name} expects an unsigned integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// The `--threads N` flag: fault-simulation worker count. `0` (also the
/// default when the flag is absent) resolves through the
/// `RESCUE_THREADS` environment variable, then the machine's available
/// parallelism — see [`rescue_core::atpg::resolve_threads`]. Every
/// experiment statistic is bit-identical for any value; only wall-clock
/// and the utilization telemetry change.
pub fn threads_arg() -> usize {
    arg_usize("--threads", 0)
}

/// Observability flags shared by every binary (see the crate docs).
#[derive(Clone, Debug, Default)]
pub struct ObsFlags {
    /// `--metrics`: render the report to stderr at exit.
    pub metrics: bool,
    /// `--trace-json <path>`: JSONL span sink.
    pub trace_json: Option<String>,
    /// `--trace-perfetto <path>`: trace-event JSON written at exit.
    pub trace_perfetto: Option<String>,
    /// `--coverage-csv <path>`: coverage curve as CSV (ATPG binaries).
    pub coverage_csv: Option<String>,
    /// `--coverage-json <path>`: coverage curve as JSON (ATPG binaries).
    pub coverage_json: Option<String>,
    /// `--serve-metrics <addr>`: live telemetry HTTP endpoint address.
    pub serve_metrics: Option<String>,
    /// `--progress-every <n>`: progress-frame period (0 = off).
    pub progress_every: u64,
    /// `--repeat <n>`: measured benchmark runs (default 1). With n > 1
    /// the varying metrics in the report become median/MAD/min/IQR
    /// statistics over the n runs.
    pub repeat: usize,
    /// `--warmup <k>`: unmeasured warmup runs before the measured ones
    /// (default 0).
    pub warmup: usize,
    /// `--metrics-json <path>`: where to write the report JSON
    /// (binaries with a conventional default, like `all` →
    /// `BENCH_metrics.json`, use it when the flag is absent).
    pub metrics_json: Option<String>,
    /// `--history <path>`: append one run-history record (git SHA,
    /// date, metric medians) to this JSONL file at exit.
    pub history: Option<String>,
}

/// The running telemetry server, held for the duration of the run and
/// shut down (gracefully, joining its thread) by [`obs_finish`].
static SERVER: std::sync::Mutex<Option<rescue_obs::TelemetryServer>> = std::sync::Mutex::new(None);

/// Probe an output file path by creating (truncating) it, exiting with
/// code 2 on failure. Every binary calls this at argument-parse time so
/// a typo'd directory or read-only destination aborts *before* the run,
/// not after minutes of engine work.
pub fn probe_output_file(path: &str) {
    if let Err(e) = std::fs::File::create(path) {
        eprintln!("error: cannot write output file {path}: {e}");
        std::process::exit(2);
    }
}

/// Probe an append-mode output file: create it if missing and verify it
/// opens for append *without* truncating existing content (the history
/// file is append-only by contract). Exits with code 2 on failure.
pub fn probe_append_file(path: &str) {
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        eprintln!("error: cannot append to output file {path}: {e}");
        std::process::exit(2);
    }
}

/// Probe an output directory: create it (and parents) if missing, then
/// verify a file can be created inside it. Exits with code 2 on
/// failure, like [`probe_output_file`].
pub fn probe_output_dir(path: &std::path::Path) {
    if let Err(e) = std::fs::create_dir_all(path) {
        eprintln!("error: cannot create output dir {}: {e}", path.display());
        std::process::exit(2);
    }
    let probe = path.join(".probe");
    match std::fs::File::create(&probe) {
        Ok(_) => {
            let _ = std::fs::remove_file(&probe);
        }
        Err(e) => {
            eprintln!("error: cannot write into dir {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// Parse the observability flags and arm the global tracer. Every
/// output path is opened here so a typo'd directory or a read-only
/// destination fails with exit code 2 before any engine work starts.
pub fn obs_init() -> ObsFlags {
    let flags = ObsFlags {
        metrics: arg_flag("--metrics"),
        trace_json: arg_str("--trace-json"),
        trace_perfetto: arg_str("--trace-perfetto"),
        coverage_csv: arg_str("--coverage-csv"),
        coverage_json: arg_str("--coverage-json"),
        serve_metrics: arg_str("--serve-metrics"),
        progress_every: arg_usize("--progress-every", 0) as u64,
        repeat: arg_usize("--repeat", 1).max(1),
        warmup: arg_usize("--warmup", 0),
        metrics_json: arg_str("--metrics-json"),
        history: arg_str("--history"),
    };
    // The phase-attribution profiler is on by default: its scopes are
    // coarse (phase-level, block-level) and its cost is bounded by the
    // obs.overhead A/B harness, while the profile.* sections it feeds
    // are part of the standard BENCH_metrics.json artifact.
    rescue_obs::profile::global().set_enabled(true);
    if let Some(path) = &flags.metrics_json {
        probe_output_file(path);
    }
    if let Some(path) = &flags.history {
        probe_append_file(path);
    }
    if let Some(path) = &flags.trace_json {
        if let Err(e) = rescue_obs::global().set_sink_path(path) {
            eprintln!("error: cannot open trace sink {path}: {e}");
            std::process::exit(2);
        }
    }
    for path in [
        &flags.trace_perfetto,
        &flags.coverage_csv,
        &flags.coverage_json,
    ]
    .into_iter()
    .flatten()
    {
        probe_output_file(path);
    }
    if flags.trace_perfetto.is_some() {
        // Keep records in memory so the trace-event document can be
        // rendered at exit (set_record also enables the tracer).
        rescue_obs::global().set_record(true);
    }
    if flags.metrics {
        rescue_obs::global().set_enabled(true);
    }
    if flags.progress_every > 0 {
        let hub = rescue_obs::live::global();
        hub.set_progress_every(flags.progress_every);
        hub.set_enabled(true);
    }
    if let Some(addr) = &flags.serve_metrics {
        let title = std::env::args().next().unwrap_or_else(|| "rescue".into());
        match rescue_obs::TelemetryServer::start(addr, &title) {
            Ok(server) => {
                // Machine-greppable line (the CI smoke job parses it to
                // find the ephemeral port).
                eprintln!("serving metrics on http://{}/metrics", server.addr());
                *SERVER.lock().expect("server slot poisoned") = Some(server);
            }
            Err(e) => {
                eprintln!("error: cannot serve metrics on {addr}: {e}");
                std::process::exit(2);
            }
        }
    }
    flags
}

/// Finish a run: fold live-telemetry totals into the report, attach
/// span summaries and the `profile.*` self-time tree (unless
/// [`run_repeated`] already did), print the report and the flame
/// summary to stderr when `--metrics` was given, flush the trace sink,
/// write the Perfetto document (real timelines plus the aggregate
/// profile track) when `--trace-perfetto` was given, and shut the
/// telemetry server down.
pub fn obs_finish(flags: &ObsFlags, report: &mut Report) {
    live_report(report);
    if report.spans.is_empty() {
        report.add_spans(rescue_obs::global().summary());
    }
    if !report
        .sections
        .iter()
        .any(|s| s.name.starts_with("profile."))
    {
        collect_profile(report, 1);
    }
    if flags.metrics {
        eprint!("{}", report.render_text());
        let rows = profile_rows();
        if !rows.is_empty() {
            eprint!(
                "{}",
                rescue_obs::profile::render_flame(&rescue_obs::profile::resolve_tree(&rows))
            );
        }
    }
    rescue_obs::global().flush();
    if let Some(path) = &flags.trace_perfetto {
        let mut records = rescue_obs::global().take_records();
        let rows = profile_rows();
        records.extend(rescue_obs::profile::to_trace_records(
            &rescue_obs::profile::resolve_tree(&rows),
        ));
        let doc = rescue_obs::perfetto::render(&report.title, &records);
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("error: cannot write perfetto trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote perfetto trace {path} ({} records)", records.len());
    }
    // Last, so /metrics stays scrapable while the report is assembled.
    if let Some(mut server) = SERVER.lock().expect("server slot poisoned").take() {
        server.shutdown();
    }
}

/// Profile rows drained at report time, kept so the flame summary and
/// the Perfetto aggregate track render from the same tree the
/// `profile.*` sections were built from.
static PROFILE_ROWS: std::sync::Mutex<Vec<(String, rescue_obs::profile::PathStat)>> =
    std::sync::Mutex::new(Vec::new());

fn profile_rows() -> Vec<(String, rescue_obs::profile::PathStat)> {
    PROFILE_ROWS.lock().expect("profile rows poisoned").clone()
}

/// Drain the profiler into `profile.*` report sections: one section per
/// tree path (slashes become dots) carrying per-run total/self
/// milliseconds and entry count (`divisor` = measured run count). The
/// whole family is informational in `bench-diff` — it is wall-clock
/// attribution, not a determinism invariant.
fn collect_profile(report: &mut Report, divisor: u64) {
    rescue_obs::profile::flush_thread();
    let rows = rescue_obs::profile::global().take();
    if rows.is_empty() {
        return;
    }
    let divisor = divisor.max(1);
    let tree = rescue_obs::profile::resolve_tree(&rows);
    for node in &tree {
        report
            .section(&format!("profile.{}", node.path.replace('/', ".")))
            .f64("total_ms", node.total_ns as f64 / divisor as f64 / 1e6)
            .f64("self_ms", node.self_ns as f64 / divisor as f64 / 1e6)
            .u64("count", node.count / divisor);
    }
    *PROFILE_ROWS.lock().expect("profile rows poisoned") = rows;
}

/// Per-name `(count, total_ns)` map of a span summary.
fn span_totals(spans: &[rescue_obs::SpanStat]) -> std::collections::HashMap<String, (u64, u64)> {
    spans
        .iter()
        .map(|s| (s.name.clone(), (s.count, s.total_ns)))
        .collect()
}

/// Run `body` `--warmup` times unmeasured, then `--repeat` times
/// measured, and merge the measured reports: deterministic values stay
/// scalars (exact gating preserved), varying values become
/// median/MAD/min/IQR statistics, span timings are per-run averages
/// over the measured window, and the `profile.*` tree is attributed to
/// the measured runs only. `body` receives the report to fill and
/// whether this is the first *measured* run (print tables then, so
/// stdout artifacts appear exactly once).
pub fn run_repeated(
    title: &str,
    flags: &ObsFlags,
    mut body: impl FnMut(&mut Report, bool),
) -> Report {
    let repeat = flags.repeat.max(1);
    for _ in 0..flags.warmup {
        let mut scratch = Report::new(title);
        body(&mut scratch, false);
    }
    // Reset measurement state so warmup work is not attributed.
    rescue_obs::profile::flush_thread();
    rescue_obs::profile::global().reset();
    let before = span_totals(&rescue_obs::global().summary());
    let mut runs: Vec<Report> = Vec::with_capacity(repeat);
    for i in 0..repeat {
        let mut r = Report::new(title);
        body(&mut r, i == 0);
        runs.push(r);
    }
    let mut merged = stats::merge_reports(&runs);
    merged
        .section("bench")
        .u64("repeat", repeat as u64)
        .u64("warmup", flags.warmup as u64);
    let spans: Vec<rescue_obs::SpanStat> = rescue_obs::global()
        .summary()
        .into_iter()
        .map(|s| {
            let (bc, bt) = before.get(&s.name).copied().unwrap_or((0, 0));
            rescue_obs::SpanStat {
                name: s.name.clone(),
                count: s.count.saturating_sub(bc) / repeat as u64,
                total_ns: s.total_ns.saturating_sub(bt) / repeat as u64,
                max_ns: s.max_ns,
            }
        })
        .filter(|s| s.count > 0 || s.total_ns > 0)
        .collect();
    merged.spans = spans;
    collect_profile(&mut merged, repeat as u64);
    merged
}

/// Write the report JSON to `--metrics-json` (or `default_path` when
/// the flag is absent; `None` = only write when asked). Exits with
/// code 1 on I/O failure.
pub fn write_metrics_json(flags: &ObsFlags, report: &Report, default_path: Option<&str>) {
    let path = flags
        .metrics_json
        .clone()
        .or_else(|| default_path.map(str::to_owned));
    let Some(path) = path else { return };
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("error: cannot write metrics JSON {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote metrics JSON {path}");
}

/// Append one run-history record to the `--history` file (no-op when
/// the flag is absent). Exits with code 1 on I/O failure.
pub fn history_append(flags: &ObsFlags, report: &Report, threads: usize) {
    let Some(path) = &flags.history else { return };
    let rec = history::HistoryRecord::from_report(report, threads, quick_mode());
    if let Err(e) = history::append_record(path, &rec) {
        eprintln!("error: cannot append history record to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("appended history record to {path} (sha {})", rec.sha);
}

/// Fill the `live` report section with the final per-counter totals
/// from the progress rings (name-sorted; only when live telemetry was
/// enabled this run). The whole section is informational in
/// `bench-diff`: it only exists on runs with `--serve-metrics` /
/// `--progress-every`.
fn live_report(report: &mut Report) {
    let hub = rescue_obs::live::global();
    if !hub.enabled() {
        return;
    }
    let snap = hub.snapshot();
    let sec = report.section("live");
    sec.f64("uptime_ms", snap.uptime_ns as f64 / 1e6);
    for c in &snap.counters {
        sec.u64(c.name, c.total);
    }
}

/// Write the design-tagged coverage `curves` to the `--coverage-csv` /
/// `--coverage-json` paths when requested (no-op otherwise).
pub fn coverage_outputs(flags: &ObsFlags, curves: &[(&str, &CoverageCurve)]) {
    let write = |path: &str, body: &str, what: &str| {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write {what} {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {what} {path}");
    };
    if let Some(path) = &flags.coverage_csv {
        let mut s = String::from(CoverageCurve::csv_header());
        for (design, c) in curves {
            s.push_str(&c.to_csv(design));
        }
        write(path, &s, "coverage CSV");
    }
    if let Some(path) = &flags.coverage_json {
        let docs: Vec<String> = curves.iter().map(|(d, c)| c.to_json(d)).collect();
        write(path, &rescue_obs::json::array(&docs), "coverage JSON");
    }
}

/// Fill one report section per ATPG phase from an [`AtpgMetrics`]: the
/// PODEM breakdown (decisions, backtracks, aborts), the fault-sim drop
/// statistics with bit-lane utilization, and the phase timings.
pub fn atpg_report(report: &mut Report, prefix: &str, m: &AtpgMetrics) {
    let c = &m.counts;
    report
        .section(&format!("{prefix}.podem"))
        .u64("faults_total", c.faults_total)
        .u64("chain_tested", c.chain_tested)
        .u64("detected", c.detected)
        .u64("untestable", c.untestable)
        .u64("aborted", c.aborted)
        .u64("decisions", c.podem_decisions)
        .u64("backtracks", c.podem_backtracks)
        .hist("backtracks_per_fault", c.backtracks_per_fault.clone());
    report
        .section(&format!("{prefix}.fsim"))
        .u64("vectors", c.vectors)
        .u64("merges_attempted", c.merges_attempted)
        .u64("merges_merged", c.merges_merged)
        .u64("blocks_flushed", c.blocks_flushed)
        .u64("patterns_simulated", c.patterns_simulated)
        .f64("word_utilization", c.word_utilization())
        .u64("faults_dropped_by_sim", c.faults_dropped_by_sim)
        .hist("drops_per_block", c.drops_per_block.clone())
        .u64("gate_evals", c.fsim_gate_evals);
    coverage_report(report, prefix, &m.coverage);
    let t = &m.timing;
    report
        .section(&format!("{prefix}.timing"))
        .f64("generate_ms", t.generate_ns as f64 / 1e6)
        .f64("compact_ms", t.compact_ns as f64 / 1e6)
        .f64("fill_ms", t.fill_ns as f64 / 1e6)
        .f64("fsim_ms", t.fsim_ns as f64 / 1e6)
        .f64("total_ms", t.total_ns as f64 / 1e6);
    // Worker utilization of the sharded fault-simulation phase. The
    // whole `.parallel` section is wall-clock/machine-dependent (the
    // thread count itself varies with `--threads`), so `bench-diff`
    // treats every key here as informational.
    let p = &m.parallel;
    let busy_ns: u64 = p.worker_busy_ns.iter().sum();
    let max_busy_ns = p.worker_busy_ns.iter().copied().max().unwrap_or(0);
    report
        .section(&format!("{prefix}.fsim.parallel"))
        .u64("threads", p.threads)
        .f64("wall_ms", p.wall_ns as f64 / 1e6)
        .f64("busy_ms", busy_ns as f64 / 1e6)
        .f64("max_worker_busy_ms", max_busy_ns as f64 / 1e6)
        .f64("utilization", p.utilization())
        .f64("effective_parallelism", p.effective_parallelism());
}

/// The `fsim-kernel` microbench: the {heap, bucket, ppsfp} × lane
/// width {64, 256, 512} kernel matrix sweeping every collapsed fault of
/// the Rescue (largest) design against the same 512-pattern stimulus,
/// an n-detect fault-dropping sweep, and the 1-vs-N-thread ATPG scaling
/// row. Deterministic counters (`detected`, `gate_evals`, the
/// `*_agreement` flags, the dropping identity flags) gate exactly in
/// `bench-diff`; the `_ms` / `_per_sec` / `speedup` keys are throughput
/// data (stats-gated directionally under `--stats-gate`), and
/// everything under `fsim_kernel.parallel` is informational wall-clock.
pub fn fsim_kernel_report(
    report: &mut Report,
    params: &rescue_core::model::ModelParams,
    threads: usize,
) {
    use rescue_core::atpg::{resolve_threads, Atpg, AtpgConfig, FaultSim, Kernel};
    use rescue_core::model::{build_pipeline, Variant};
    use rescue_core::netlist::{scan::insert_scan, Fault, Levelized, PatternBlock};
    use std::time::Instant;

    let _s = rescue_obs::span("fsim_kernel");
    let threads = resolve_threads(threads);
    let model = build_pipeline(params, Variant::Rescue);
    let scanned = insert_scan(&model.netlist).expect("model has state");
    let lev = Levelized::new(&scanned.netlist);
    let faults = scanned.netlist.collapse_faults();

    // 1-vs-N scaling row: the same full ATPG run, serial then sharded.
    // Identical results are the serial-equivalence guarantee; the gap in
    // wall-clock is the speedup the sharding layer buys.
    let timed_run = |cfg: AtpgConfig| {
        let t = Instant::now();
        let r = Atpg::new(&scanned, cfg)
            .expect("scan design is well-formed")
            .run()
            .expect("atpg run");
        (r, t.elapsed().as_secs_f64())
    };
    let (run_1t, secs_1t) = timed_run(AtpgConfig {
        threads: 1,
        ..AtpgConfig::default()
    });
    let (run_nt, secs_nt) = timed_run(AtpgConfig {
        threads,
        ..AtpgConfig::default()
    });
    let identical = run_1t.stats == run_nt.stats
        && run_1t.metrics.counts == run_nt.metrics.counts
        && run_1t.metrics.coverage.to_csv("x") == run_nt.metrics.coverage.to_csv("x");

    // One shared 512-pattern stimulus (8 × 64-pattern blocks, the lcm
    // of every lane width): the run's own blocks, padded with seeded
    // SplitMix blocks if the run produced fewer than eight.
    let mut group: Vec<PatternBlock> = run_nt.blocks(&scanned).into_iter().take(8).collect();
    let mut pad = rescue_obs::SplitMix64::new(0x5eed_f51b_0000_0008);
    while group.len() < 8 {
        group.push(PatternBlock {
            inputs: (0..scanned.netlist.inputs().len())
                .map(|_| pad.next_u64())
                .collect(),
            state: (0..scanned.netlist.num_dffs())
                .map(|_| pad.next_u64())
                .collect(),
        });
    }

    // One matrix cell: sweep every fault against all 512 patterns in
    // `8 / W` wide passes; per-fault "ever detected" flags are the
    // bit-for-bit agreement evidence across all nine cells.
    fn wide_pass<const W: usize>(
        lev: &Levelized,
        faults: &[Fault],
        group: &[PatternBlock],
        kernel: Kernel,
    ) -> (Vec<bool>, u64, f64) {
        let mut sim: FaultSim<W> = FaultSim::wide(lev, kernel);
        let mut detected = vec![false; faults.len()];
        let t = Instant::now();
        for chunk in group.chunks(W) {
            sim.load_blocks(chunk);
            for (d, &f) in detected.iter_mut().zip(faults) {
                if sim.detect_mask_wide(f).iter().any(|&w| w != 0) {
                    *d = true;
                }
            }
        }
        (
            detected,
            sim.stats().gate_evals.get(),
            t.elapsed().as_secs_f64(),
        )
    }

    // The timed arms run with the profiler off so the PPSFP kernel's
    // per-fault scopes don't bias its wall-clock against the others; an
    // untimed attribution pass afterwards restores `profile.ppsfp_*`.
    let prof = rescue_obs::profile::global();
    let prof_was = prof.enabled();
    prof.set_enabled(false);
    let kernels: [(&str, Kernel); 3] = [
        ("bucket", Kernel::Bucket),
        ("heap", Kernel::Heap),
        ("ppsfp", Kernel::Ppsfp),
    ];
    let mut cells: Vec<(&str, usize, Vec<bool>, u64, f64)> = Vec::new();
    for (name, kernel) in kernels {
        let (d, e, s) = wide_pass::<1>(&lev, &faults, &group, kernel);
        cells.push((name, 64, d, e, s));
        let (d, e, s) = wide_pass::<4>(&lev, &faults, &group, kernel);
        cells.push((name, 256, d, e, s));
        let (d, e, s) = wide_pass::<8>(&lev, &faults, &group, kernel);
        cells.push((name, 512, d, e, s));
    }
    prof.set_enabled(prof_was);
    if prof_was {
        let _prof = rescue_obs::profile::scope("fsim_kernel_matrix");
        wide_pass::<8>(&lev, &faults, &group, Kernel::Ppsfp);
    }

    // Bit-for-bit agreement: every cell must detect exactly the same
    // fault set, and within each width every kernel must drive the same
    // event set (equal eval counts).
    let detect_agreement = cells.iter().all(|(_, _, d, _, _)| *d == cells[0].2);
    let eval_agreement = [64usize, 256, 512].iter().all(|&w| {
        let evals: Vec<u64> = cells
            .iter()
            .filter(|&&(_, cw, _, _, _)| cw == w)
            .map(|&(_, _, _, e, _)| e)
            .collect();
        evals.windows(2).all(|p| p[0] == p[1])
    });

    let cell = |name: &str, w: usize| {
        cells
            .iter()
            .find(|&&(n, cw, _, _, _)| n == name && cw == w)
            .expect("matrix covers all cells")
    };
    let count = |d: &[bool]| d.iter().filter(|&&x| x).count() as u64;
    for &(name, w, ref d, e, s) in &cells {
        report
            .section(&format!("fsim_kernel.{name}.w{w}"))
            .u64("detected", count(d))
            .u64("gate_evals", e)
            .f64("sweep_ms", s * 1e3)
            .f64("evals_per_sec", e as f64 / s.max(1e-12));
    }

    // n-detect dropping sweep: the watch list must not perturb any
    // result — identity flags gate exactly — while its counters and
    // extra simulation work are reported per target.
    for n in [2u32, 4] {
        let (run, secs) = timed_run(AtpgConfig {
            threads,
            drop_after: Some(n),
            ..AtpgConfig::default()
        });
        let c = &run.metrics.counts;
        report
            .section(&format!("fsim_kernel.dropping.n{n}"))
            .u64("ndetect_target", c.ndetect_target)
            .u64("ndetect_detections", c.ndetect_detections)
            .u64("ndetect_retired", c.ndetect_retired)
            .u64("ndetect_residual", c.ndetect_residual)
            .u64("gate_evals", c.fsim_gate_evals)
            .u64(
                "classes_identical",
                u64::from(run.classes == run_nt.classes),
            )
            .u64(
                "vectors_identical",
                u64::from(run.vectors == run_nt.vectors),
            )
            .f64("atpg_ms", secs * 1e3);
    }

    let &(_, _, _, evals_bucket, secs_bucket) = cell("bucket", 64);
    let &(_, _, _, evals_heap, secs_heap) = cell("heap", 64);
    let best_ppsfp = [256usize, 512]
        .iter()
        .map(|&w| cell("ppsfp", w))
        .map(|&(_, _, _, e, s)| (e, s))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("ppsfp cells exist");
    report
        .section("fsim_kernel")
        .u64("faults", faults.len() as u64)
        .u64("patterns", group.len() as u64 * 64)
        .u64("detected_bucket", count(&cell("bucket", 64).2))
        .u64("detected_heap", count(&cell("heap", 64).2))
        .u64("detected_ppsfp", count(&cell("ppsfp", 512).2))
        .u64("gate_evals_bucket", evals_bucket)
        .u64("gate_evals_heap", evals_heap)
        .u64("gate_evals_ppsfp", cell("ppsfp", 512).3)
        .u64("detect_agreement", u64::from(detect_agreement))
        .u64("eval_agreement", u64::from(eval_agreement))
        .u64("serial_equivalence", u64::from(identical))
        .f64("bucket_ms", secs_bucket * 1e3)
        .f64("heap_ms", secs_heap * 1e3)
        .f64("ppsfp_ms", best_ppsfp.1 * 1e3)
        .f64(
            "bucket_evals_per_sec",
            evals_bucket as f64 / secs_bucket.max(1e-12),
        )
        .f64(
            "heap_evals_per_sec",
            evals_heap as f64 / secs_heap.max(1e-12),
        )
        .f64(
            "ppsfp_evals_per_sec",
            best_ppsfp.0 as f64 / best_ppsfp.1.max(1e-12),
        )
        .f64("kernel_speedup", secs_heap / secs_bucket.max(1e-12))
        .f64("ppsfp_speedup", secs_bucket / best_ppsfp.1.max(1e-12));
    report
        .section("fsim_kernel.parallel")
        .u64("threads", threads as u64)
        .f64("atpg_1t_ms", secs_1t * 1e3)
        .f64("atpg_nt_ms", secs_nt * 1e3)
        .f64("atpg_speedup", secs_1t / secs_nt.max(1e-12))
        .f64("utilization", run_nt.metrics.parallel.utilization())
        .f64(
            "effective_parallelism",
            run_nt.metrics.parallel.effective_parallelism(),
        );
}

/// The `obs.overhead` self-benchmark: the cost of live telemetry,
/// itself measured. Sweeps every collapsed fault of the Rescue design
/// against one deterministic pattern block on the bucket kernel — once
/// with the live hub disabled, once with it enabled *and* a per-fault
/// ring record (strictly more record traffic than the per-shard records
/// production code emits) — and reports both throughputs plus their
/// ratio. Best-of-3 per arm, arms interleaved. Wall-clock data: the
/// whole `obs.overhead` section is informational in `bench-diff`.
pub fn obs_overhead_report(report: &mut Report, params: &rescue_core::model::ModelParams) {
    use rescue_core::atpg::{FaultSim, Kernel};
    use rescue_core::model::{build_pipeline, Variant};
    use rescue_core::netlist::{scan::insert_scan, Levelized, PatternBlock};
    use std::time::Instant;

    let _s = rescue_obs::span("obs_overhead");
    let model = build_pipeline(params, Variant::Rescue);
    let scanned = insert_scan(&model.netlist).expect("model has state");
    let lev = Levelized::new(&scanned.netlist);
    let faults = scanned.netlist.collapse_faults();
    let block = PatternBlock {
        inputs: vec![0x1234_5678_9abc_def0; scanned.netlist.inputs().len()],
        state: vec![0x0ff0_f00f_aa55_55aa; scanned.netlist.num_dffs()],
    };

    let hub = rescue_obs::live::global();
    let prof = rescue_obs::profile::global();
    let was_enabled = hub.enabled();
    let prof_was_enabled = prof.enabled();
    // Three arms, A/B/C: everything off, the live hub alone, and hub
    // plus the phase profiler. The hub arm publishes at PPSFP-block
    // granularity (one `hub.record` per 64 faults) — still far more
    // often than the production path, which publishes once per shard
    // per batch — and the profiler arm additionally opens one profile
    // scope per 64-fault chunk, denser than the phase-level scopes
    // production code uses, so both measured ratios are conservative
    // upper bounds. Each arm repeats the full-fault sweep until it has
    // run for at least `MIN_ARM_SECS`, so tiny --quick circuits still
    // give a stable per-eval rate.
    const RECORD_EVERY_FAULTS: usize = 64;
    const MIN_ARM_SECS: f64 = 0.1;
    let sweep = |hub_on: bool, prof_on: bool| -> (u64, f64) {
        hub.set_enabled(hub_on);
        prof.set_enabled(prof_on);
        let mut sim = FaultSim::with_kernel(&lev, Kernel::Bucket);
        sim.load_block(&block);
        let mut evals = 0u64;
        let t = Instant::now();
        loop {
            let mut pending_delta = 0u64;
            let mut chunk_scope = None;
            for (i, &f) in faults.iter().enumerate() {
                let before = sim.stats().gate_evals.get();
                std::hint::black_box(sim.detect_mask(f));
                evals += sim.stats().gate_evals.get() - before;
                if hub_on {
                    pending_delta += sim.stats().gate_evals.get() - before;
                    if i.is_multiple_of(RECORD_EVERY_FAULTS) {
                        hub.record(rescue_obs::LiveCounter::FsimGateEvals, pending_delta);
                        pending_delta = 0;
                    }
                }
                if prof_on && i.is_multiple_of(RECORD_EVERY_FAULTS) {
                    // Close the previous chunk before opening the next:
                    // scopes are a LIFO stack, so the old guard must
                    // drop first.
                    drop(chunk_scope.take());
                    chunk_scope = Some(rescue_obs::profile::scope_root("obs_sweep"));
                }
            }
            drop(chunk_scope);
            if hub_on && pending_delta > 0 {
                hub.record(rescue_obs::LiveCounter::FsimGateEvals, pending_delta);
            }
            if t.elapsed().as_secs_f64() >= MIN_ARM_SECS {
                break;
            }
        }
        (evals, t.elapsed().as_secs_f64())
    };
    let mut evals = 0u64;
    let mut best_off = f64::MAX;
    let mut best_hub = f64::MAX;
    let mut best_full = f64::MAX;
    for _ in 0..3 {
        let (e, secs) = sweep(false, false);
        evals = e;
        best_off = best_off.min(secs / e.max(1) as f64);
        let (e, secs) = sweep(true, false);
        best_hub = best_hub.min(secs / e.max(1) as f64);
        let (e, secs) = sweep(true, true);
        best_full = best_full.min(secs / e.max(1) as f64);
    }
    hub.set_enabled(was_enabled);
    prof.set_enabled(prof_was_enabled);
    // The sweep's chunk scopes stay in the profile under the root-level
    // `obs_sweep` path — honest attribution of the self-benchmark's own
    // cost, kept apart from the engine phases.
    // Normalize per-eval (arms may run different sweep counts).
    let best_off = best_off * evals as f64;
    let best_hub = best_hub * evals as f64;
    let best_full = best_full * evals as f64;
    let pct = |num: f64, den: f64| (num / den.max(1e-12) - 1.0) * 100.0;

    report
        .section("obs.overhead")
        .u64("faults", faults.len() as u64)
        .u64("gate_evals", evals)
        .f64("uninstrumented_ms", best_off * 1e3)
        .f64("instrumented_ms", best_full * 1e3)
        .f64(
            "uninstrumented_evals_per_sec",
            evals as f64 / best_off.max(1e-12),
        )
        .f64(
            "instrumented_evals_per_sec",
            evals as f64 / best_full.max(1e-12),
        )
        .f64("overhead_ratio", best_full / best_off.max(1e-12))
        .f64("overhead_pct", pct(best_full, best_off))
        .f64("hub_overhead_pct", pct(best_hub, best_off))
        .f64("profiler_overhead_pct", pct(best_full, best_hub));
}

/// Run the static DFT linter over the model's baseline and Rescue
/// pipeline netlists, pre-scan and post-scan, filling one
/// `lint.<variant>.<phase>` section per design (diagnostic counts are
/// deterministic and gate exactly in `bench-diff`) plus a
/// `...scoap` subsection with the SCOAP aggregates (informational).
///
/// Returns the linted designs as `(label, report)` pairs so callers can
/// also serialize the full JSON documents or enforce `--fail-on`.
pub fn lint_report(
    report: &mut Report,
    params: &rescue_core::model::ModelParams,
) -> Vec<(String, rescue_lint::LintReport)> {
    use rescue_core::model::{build_pipeline, Variant};
    use rescue_core::netlist::scan::insert_scan;

    let _s = rescue_obs::span("lint");
    let mut designs = Vec::new();
    for variant in [Variant::Baseline, Variant::Rescue] {
        let tag = format!("{variant:?}").to_lowercase();
        let model = build_pipeline(params, variant);
        let scanned = insert_scan(&model.netlist).expect("model has state");
        designs.push((
            format!("{tag}.prescan"),
            rescue_lint::lint_netlist(&model.netlist),
        ));
        designs.push((format!("{tag}.scan"), rescue_lint::lint_scan(&scanned)));
    }
    for (label, lr) in &designs {
        let findings = lr.count(rescue_lint::Severity::Error)
            + lr.count(rescue_lint::Severity::Warning)
            + lr.count(rescue_lint::Severity::Info);
        rescue_obs::live::global().record(rescue_obs::LiveCounter::LintFindings, findings as u64);
        let sec = report.section(&format!("lint.{label}"));
        sec.u64("errors", lr.count(rescue_lint::Severity::Error) as u64)
            .u64("warnings", lr.count(rescue_lint::Severity::Warning) as u64)
            .u64("infos", lr.count(rescue_lint::Severity::Info) as u64)
            .u64("stuck_nets", lr.stuck_nets.len() as u64);
        for rule in rescue_lint::Rule::ALL {
            sec.u64(&format!("rule.{}", rule.name()), lr.count_rule(rule) as u64);
        }
        if let Some(s) = &lr.scoap {
            report
                .section(&format!("lint.{label}.scoap"))
                .f64("co_mean", s.co_mean())
                .u64("co_max", s.co_max())
                .u64("components", s.per_component.len() as u64);
        }
        if let Some(imp) = &lr.implication {
            report
                .section(&format!("lint.{label}.impl"))
                .u64("literals", imp.stats.literals)
                .u64("direct_implications", imp.stats.direct_implications)
                .u64("constant_literals", imp.stats.constant_literals)
                .u64("probe_rounds", imp.stats.probe_rounds)
                .u64("stems", imp.stats.stems)
                .u64("reconvergent_stems", imp.stats.reconvergent_stems)
                .u64("redundant_faults", imp.redundant_faults.len() as u64);
        }
    }
    designs
}

/// Measure the static-implication ATPG pre-pass on both model
/// variants: run the full ATPG flow once with the pre-pass off and
/// once with it on, and re-check the contract the `rescue-atpg` and
/// `rescue-core` tests pin on every bench run. `vectors_identical`
/// must stay 1 (the test set never moves), `unsound_diffs` must stay
/// 0 (the only classification difference allowed is the sound
/// `Aborted` → `Untestable` upgrade on proven faults, tallied in
/// `upgraded_aborts`), and all counts are deterministic, gating
/// exactly in `bench-diff`. Throughput and wall-clock keys carry the
/// `_per_sec` / `_ms` suffixes so `bench-diff` treats them as
/// informational.
pub fn prepass_report(report: &mut Report, params: &rescue_core::model::ModelParams) {
    use rescue_core::atpg::{Atpg, AtpgConfig, FaultClass};
    use rescue_core::experiments::build_scanned;
    use rescue_core::model::Variant;

    let _s = rescue_obs::span("prepass");
    for variant in [Variant::Baseline, Variant::Rescue] {
        let tag = format!("{variant:?}").to_lowercase();
        let (_model, scanned) = build_scanned(params, variant);

        let base_cfg = AtpgConfig::default();
        let base = Atpg::new(&scanned, base_cfg.clone())
            .expect("scan design")
            .run()
            .expect("atpg run");
        let pre_cfg = AtpgConfig {
            static_prepass: true,
            ..base_cfg
        };
        let pre = Atpg::new(&scanned, pre_cfg)
            .expect("scan design")
            .run()
            .expect("atpg run");

        let mut upgraded = 0u64;
        let mut unsound = 0u64;
        for (fault, base_class) in &base.classes {
            match pre.classes.get(fault) {
                Some(pre_class) if pre_class == base_class => {}
                Some(FaultClass::Untestable) if *base_class == FaultClass::Aborted => {
                    upgraded += 1;
                }
                _ => unsound += 1,
            }
        }
        unsound += (pre.classes.len() != base.classes.len()) as u64;

        let prepass_s = pre.metrics.timing.prepass_ns as f64 / 1e9;
        let proven = pre.metrics.counts.prepass_proven;
        report
            .section(&format!("atpg.prepass.{tag}"))
            .u64("proven", proven)
            .u64(
                "podem_calls_saved",
                pre.metrics.counts.prepass_podem_calls_saved,
            )
            .u64("vectors_identical", (base.vectors == pre.vectors) as u64)
            .u64("upgraded_aborts", upgraded)
            .u64("unsound_diffs", unsound)
            .u64("vectors", pre.vectors.len() as u64)
            .f64("prepass_ms", prepass_s * 1e3)
            .f64("proofs_per_sec", proven as f64 / prepass_s.max(1e-12));
    }
}

/// Fill one report section from a [`CoverageCurve`]: the endpoint, the
/// curve shape, and the per-component attribution of detected faults.
pub fn coverage_report(report: &mut Report, prefix: &str, c: &CoverageCurve) {
    let sec = report.section(&format!("{prefix}.coverage"));
    sec.u64("targetable", c.targetable)
        .u64("detected", c.detected_total())
        .u64("vectors", c.vectors)
        .u64("curve_points", c.points.len() as u64)
        .f64("final_coverage", c.final_coverage());
    for (label, n) in &c.attribution {
        sec.u64(&format!("attr.{label}"), *n);
    }
}

/// Minimal wall-clock benchmark harness for the `benches/` targets
/// (they build with `harness = false`, so they provide their own
/// `main`). Runs `f` once as warmup, then `samples` timed batches of
/// `iters_per_sample` calls, and prints min/median/max ns-per-call in
/// the spirit of `cargo bench`. Keep return values alive with
/// [`std::hint::black_box`] inside `f`.
pub fn bench<F: FnMut()>(name: &str, samples: usize, iters_per_sample: usize, mut f: F) {
    f();
    let mut per_call: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = std::time::Instant::now();
        for _ in 0..iters_per_sample {
            f();
        }
        per_call.push(t.elapsed().as_nanos() as u64 / iters_per_sample.max(1) as u64);
    }
    per_call.sort_unstable();
    let min = per_call.first().copied().unwrap_or(0);
    let med = per_call[per_call.len() / 2];
    let max = per_call.last().copied().unwrap_or(0);
    println!("{name:40} min {min:>12} ns  median {med:>12} ns  max {max:>12} ns");
}

/// Fill one report section from a pipeline [`SimResult`]: IPC, stall
/// causes, squash/replay counts, and the windowed-IPC distribution.
pub fn sim_report(report: &mut Report, name: &str, r: &SimResult) {
    report
        .section(name)
        .u64("cycles", r.cycles)
        .u64("committed", r.committed)
        .f64("ipc", r.ipc())
        .u64("mispredicts", r.mispredicts)
        .u64("l1_misses", r.l1_misses)
        .u64("miss_squashes", r.miss_squashes)
        .u64("overcommit_replays", r.overcommit_replays)
        .f64("wasted_issue_fraction", r.wasted_issue_fraction())
        .u64("dispatch_stall_cycles", r.dispatch_stall_cycles)
        .u64("stall_rob_full", r.stall_rob_full)
        .u64("stall_lsq_full", r.stall_lsq_full)
        .u64("stall_iq_full", r.stall_iq_full)
        .u64("fetch_stall_cycles", r.fetch_stall_cycles)
        .f64("avg_iq_occupancy", r.avg_iq_occupancy())
        .f64("avg_fpq_occupancy", r.avg_fpq_occupancy())
        .f64("avg_rob_occupancy", r.avg_rob_occupancy())
        .u64("ipc_window_cycles", IPC_WINDOW_CYCLES)
        .hist("committed_per_window", r.ipc_windows.clone());
}
