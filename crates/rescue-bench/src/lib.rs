//! Shared helpers for the experiment-regeneration binaries.
//!
//! Each binary regenerates one table or figure of the paper:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1, system parameters |
//! | `table2` | Table 2, total and relative areas |
//! | `table3` | Table 3, scan chain data (full ATPG on both designs) |
//! | `isolation` | §6.1 fault-isolation experiment |
//! | `fig8` | Figure 8, per-benchmark IPC degradation |
//! | `fig9` | Figure 9 (both panels), relative YAT vs technology |
//! | `all` | everything above in sequence |
//!
//! Every binary accepts `--quick` to run a reduced-size configuration
//! suitable for smoke testing, plus the observability flags:
//!
//! * `--metrics` — print an engine-counter and span-timing report to
//!   stderr when the run finishes,
//! * `--trace-json <path>` — stream spans/events as JSON Lines to
//!   `path` while the run executes,
//! * `--trace-perfetto <path>` — write a Chrome trace-event JSON
//!   document at exit, loadable in `chrome://tracing` /
//!   [ui.perfetto.dev](https://ui.perfetto.dev),
//! * `--coverage-csv <path>` / `--coverage-json <path>` — (binaries
//!   that run ATPG: `table3`, `isolation`, `all`) write the per-vector
//!   coverage curve with per-component attribution.
//!
//! Every output path is probed at argument-parse time: an unwritable
//! destination aborts with exit code 2 *before* the run, not after it.
//!
//! The `bench-diff` binary is the regression gate over the
//! `BENCH_metrics.json` artifact; see [`diff`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;

use rescue_core::atpg::AtpgMetrics;
use rescue_core::pipesim::{SimResult, IPC_WINDOW_CYCLES};
use rescue_obs::{CoverageCurve, Report};

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    arg_flag("--quick")
}

/// Whether the bare flag `name` was passed on the command line.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `name` on the command line, if present. Exits
/// with an error when the flag is last (no value to take).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            match args.get(i + 1) {
                Some(v) => return Some(v.clone()),
                None => {
                    eprintln!("error: {name} requires a value");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse `name N` (e.g. `--faults-per-stage 100`), defaulting to `dflt`
/// when absent. A malformed value is an error, not a silent fallback.
pub fn arg_usize(name: &str, dflt: usize) -> usize {
    match arg_str(name) {
        None => dflt,
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: {name} expects an unsigned integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// Observability flags shared by every binary (see the crate docs).
#[derive(Clone, Debug, Default)]
pub struct ObsFlags {
    /// `--metrics`: render the report to stderr at exit.
    pub metrics: bool,
    /// `--trace-json <path>`: JSONL span sink.
    pub trace_json: Option<String>,
    /// `--trace-perfetto <path>`: trace-event JSON written at exit.
    pub trace_perfetto: Option<String>,
    /// `--coverage-csv <path>`: coverage curve as CSV (ATPG binaries).
    pub coverage_csv: Option<String>,
    /// `--coverage-json <path>`: coverage curve as JSON (ATPG binaries).
    pub coverage_json: Option<String>,
}

/// Parse the observability flags and arm the global tracer. Every
/// output path is opened here so a typo'd directory or a read-only
/// destination fails with exit code 2 before any engine work starts.
pub fn obs_init() -> ObsFlags {
    let flags = ObsFlags {
        metrics: arg_flag("--metrics"),
        trace_json: arg_str("--trace-json"),
        trace_perfetto: arg_str("--trace-perfetto"),
        coverage_csv: arg_str("--coverage-csv"),
        coverage_json: arg_str("--coverage-json"),
    };
    if let Some(path) = &flags.trace_json {
        if let Err(e) = rescue_obs::global().set_sink_path(path) {
            eprintln!("error: cannot open trace sink {path}: {e}");
            std::process::exit(2);
        }
    }
    for path in [
        &flags.trace_perfetto,
        &flags.coverage_csv,
        &flags.coverage_json,
    ]
    .into_iter()
    .flatten()
    {
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("error: cannot write output file {path}: {e}");
            std::process::exit(2);
        }
    }
    if flags.trace_perfetto.is_some() {
        // Keep records in memory so the trace-event document can be
        // rendered at exit (set_record also enables the tracer).
        rescue_obs::global().set_record(true);
    }
    if flags.metrics {
        rescue_obs::global().set_enabled(true);
    }
    flags
}

/// Finish a run: attach span summaries, print the report to stderr when
/// `--metrics` was given, flush the trace sink, and write the Perfetto
/// document when `--trace-perfetto` was given.
pub fn obs_finish(flags: &ObsFlags, report: &mut Report) {
    report.add_spans(rescue_obs::global().summary());
    if flags.metrics {
        eprint!("{}", report.render_text());
    }
    rescue_obs::global().flush();
    if let Some(path) = &flags.trace_perfetto {
        let records = rescue_obs::global().take_records();
        let doc = rescue_obs::perfetto::render(&report.title, &records);
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("error: cannot write perfetto trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote perfetto trace {path} ({} records)", records.len());
    }
}

/// Write the design-tagged coverage `curves` to the `--coverage-csv` /
/// `--coverage-json` paths when requested (no-op otherwise).
pub fn coverage_outputs(flags: &ObsFlags, curves: &[(&str, &CoverageCurve)]) {
    let write = |path: &str, body: &str, what: &str| {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write {what} {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {what} {path}");
    };
    if let Some(path) = &flags.coverage_csv {
        let mut s = String::from(CoverageCurve::csv_header());
        for (design, c) in curves {
            s.push_str(&c.to_csv(design));
        }
        write(path, &s, "coverage CSV");
    }
    if let Some(path) = &flags.coverage_json {
        let docs: Vec<String> = curves.iter().map(|(d, c)| c.to_json(d)).collect();
        write(path, &rescue_obs::json::array(&docs), "coverage JSON");
    }
}

/// Fill one report section per ATPG phase from an [`AtpgMetrics`]: the
/// PODEM breakdown (decisions, backtracks, aborts), the fault-sim drop
/// statistics with bit-lane utilization, and the phase timings.
pub fn atpg_report(report: &mut Report, prefix: &str, m: &AtpgMetrics) {
    let c = &m.counts;
    report
        .section(&format!("{prefix}.podem"))
        .u64("faults_total", c.faults_total)
        .u64("chain_tested", c.chain_tested)
        .u64("detected", c.detected)
        .u64("untestable", c.untestable)
        .u64("aborted", c.aborted)
        .u64("decisions", c.podem_decisions)
        .u64("backtracks", c.podem_backtracks)
        .hist("backtracks_per_fault", c.backtracks_per_fault.clone());
    report
        .section(&format!("{prefix}.fsim"))
        .u64("vectors", c.vectors)
        .u64("merges_attempted", c.merges_attempted)
        .u64("merges_merged", c.merges_merged)
        .u64("blocks_flushed", c.blocks_flushed)
        .u64("patterns_simulated", c.patterns_simulated)
        .f64("word_utilization", c.word_utilization())
        .u64("faults_dropped_by_sim", c.faults_dropped_by_sim)
        .hist("drops_per_block", c.drops_per_block.clone())
        .u64("gate_evals", c.fsim_gate_evals);
    coverage_report(report, prefix, &m.coverage);
    let t = &m.timing;
    report
        .section(&format!("{prefix}.timing"))
        .f64("generate_ms", t.generate_ns as f64 / 1e6)
        .f64("compact_ms", t.compact_ns as f64 / 1e6)
        .f64("fill_ms", t.fill_ns as f64 / 1e6)
        .f64("fsim_ms", t.fsim_ns as f64 / 1e6)
        .f64("total_ms", t.total_ns as f64 / 1e6);
}

/// Fill one report section from a [`CoverageCurve`]: the endpoint, the
/// curve shape, and the per-component attribution of detected faults.
pub fn coverage_report(report: &mut Report, prefix: &str, c: &CoverageCurve) {
    let sec = report.section(&format!("{prefix}.coverage"));
    sec.u64("targetable", c.targetable)
        .u64("detected", c.detected_total())
        .u64("vectors", c.vectors)
        .u64("curve_points", c.points.len() as u64)
        .f64("final_coverage", c.final_coverage());
    for (label, n) in &c.attribution {
        sec.u64(&format!("attr.{label}"), *n);
    }
}

/// Minimal wall-clock benchmark harness for the `benches/` targets
/// (they build with `harness = false`, so they provide their own
/// `main`). Runs `f` once as warmup, then `samples` timed batches of
/// `iters_per_sample` calls, and prints min/median/max ns-per-call in
/// the spirit of `cargo bench`. Keep return values alive with
/// [`std::hint::black_box`] inside `f`.
pub fn bench<F: FnMut()>(name: &str, samples: usize, iters_per_sample: usize, mut f: F) {
    f();
    let mut per_call: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = std::time::Instant::now();
        for _ in 0..iters_per_sample {
            f();
        }
        per_call.push(t.elapsed().as_nanos() as u64 / iters_per_sample.max(1) as u64);
    }
    per_call.sort_unstable();
    let min = per_call.first().copied().unwrap_or(0);
    let med = per_call[per_call.len() / 2];
    let max = per_call.last().copied().unwrap_or(0);
    println!("{name:40} min {min:>12} ns  median {med:>12} ns  max {max:>12} ns");
}

/// Fill one report section from a pipeline [`SimResult`]: IPC, stall
/// causes, squash/replay counts, and the windowed-IPC distribution.
pub fn sim_report(report: &mut Report, name: &str, r: &SimResult) {
    report
        .section(name)
        .u64("cycles", r.cycles)
        .u64("committed", r.committed)
        .f64("ipc", r.ipc())
        .u64("mispredicts", r.mispredicts)
        .u64("l1_misses", r.l1_misses)
        .u64("miss_squashes", r.miss_squashes)
        .u64("overcommit_replays", r.overcommit_replays)
        .f64("wasted_issue_fraction", r.wasted_issue_fraction())
        .u64("dispatch_stall_cycles", r.dispatch_stall_cycles)
        .u64("stall_rob_full", r.stall_rob_full)
        .u64("stall_lsq_full", r.stall_lsq_full)
        .u64("stall_iq_full", r.stall_iq_full)
        .u64("fetch_stall_cycles", r.fetch_stall_cycles)
        .f64("avg_iq_occupancy", r.avg_iq_occupancy())
        .f64("avg_fpq_occupancy", r.avg_fpq_occupancy())
        .f64("avg_rob_occupancy", r.avg_rob_occupancy())
        .u64("ipc_window_cycles", IPC_WINDOW_CYCLES)
        .hist("committed_per_window", r.ipc_windows.clone());
}
