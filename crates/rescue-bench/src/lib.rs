//! Shared helpers for the experiment-regeneration binaries.
//!
//! Each binary regenerates one table or figure of the paper:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1, system parameters |
//! | `table2` | Table 2, total and relative areas |
//! | `table3` | Table 3, scan chain data (full ATPG on both designs) |
//! | `isolation` | §6.1 fault-isolation experiment |
//! | `fig8` | Figure 8, per-benchmark IPC degradation |
//! | `fig9` | Figure 9 (both panels), relative YAT vs technology |
//! | `all` | everything above in sequence |
//!
//! Every binary accepts `--quick` to run a reduced-size configuration
//! suitable for smoke testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parse `--faults-per-stage N` (isolation binary), defaulting to `dflt`.
pub fn arg_usize(name: &str, dflt: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == name {
            return w[1].parse().unwrap_or(dflt);
        }
    }
    dflt
}
