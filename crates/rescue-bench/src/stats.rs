//! Merging repeated-run reports into one statistically honest report
//! (the `--repeat N` mode).
//!
//! Each of the N measured runs produces a full [`Report`]; this module
//! folds them per `(section, key)`:
//!
//! * values identical across every run (detected-fault counts, vector
//!   counts — anything deterministic) stay plain scalars, so the
//!   exact-integer rules in `bench-diff` keep gating them and a
//!   `--repeat 1` run produces byte-compatible output;
//! * values that vary (wall-clock, throughput) become
//!   [`Value::Stats`] — median/MAD/min/max/IQR over the N samples —
//!   which `bench-diff` compares with a noise band derived from the
//!   baseline's own spread;
//! * strings and histograms keep the first run's value (histograms are
//!   deterministic here; a varying histogram would already fail the
//!   scalar counters feeding it).

use rescue_obs::report::{Report, RobustStats, Section, Value};

/// Merge `runs` (all produced by the same benchmark body) into one
/// report. Section and key order follow the first run; keys missing
/// from some run are merged over the runs that have them. Span tables
/// are left empty — the caller attaches per-run averaged spans
/// separately.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn merge_reports(runs: &[Report]) -> Report {
    let first = runs.first().expect("merge_reports needs at least one run");
    if runs.len() == 1 {
        return first.clone();
    }
    let mut out = Report::new(&first.title);
    for sec in &first.sections {
        let mut merged = Section {
            name: sec.name.clone(),
            entries: Vec::new(),
        };
        for (key, v0) in &sec.entries {
            let all: Vec<&Value> = runs.iter().filter_map(|r| r.get(&sec.name, key)).collect();
            merged.entries.push((key.clone(), merge_values(v0, &all)));
        }
        out.sections.push(merged);
    }
    out
}

/// Merge one key's values across runs (see the module docs for rules).
fn merge_values(first: &Value, all: &[&Value]) -> Value {
    match first {
        Value::U64(_) | Value::I64(_) | Value::F64(_) => {
            let identical = all.windows(2).all(|w| values_equal(w[0], w[1]));
            if identical {
                first.clone()
            } else {
                let samples: Vec<f64> = all.iter().filter_map(|v| as_f64(v)).collect();
                Value::Stats(RobustStats::from_samples(&samples))
            }
        }
        Value::Str(_) | Value::Hist(_) | Value::Stats(_) => first.clone(),
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        // Bit-equality for floats: a deterministic metric reproduces
        // exactly; anything else is measurement noise.
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(fsim_ms: f64, faults: u64) -> Report {
        let mut r = Report::new("t");
        r.section("kern")
            .u64("faults", faults)
            .f64("fsim_ms", fsim_ms)
            .str("mode", "quick");
        r
    }

    #[test]
    fn identical_values_stay_scalars() {
        let merged = merge_reports(&[run(5.0, 10), run(5.0, 10), run(5.0, 10)]);
        assert_eq!(merged.get("kern", "faults"), Some(&Value::U64(10)));
        assert_eq!(merged.get("kern", "fsim_ms"), Some(&Value::F64(5.0)));
        assert_eq!(
            merged.get("kern", "mode"),
            Some(&Value::Str("quick".into()))
        );
    }

    #[test]
    fn varying_values_become_stats() {
        let merged = merge_reports(&[run(4.0, 10), run(5.0, 10), run(9.0, 10)]);
        assert_eq!(merged.get("kern", "faults"), Some(&Value::U64(10)));
        match merged.get("kern", "fsim_ms") {
            Some(Value::Stats(st)) => {
                assert_eq!(st.n, 3);
                assert_eq!(st.median, 5.0);
                assert_eq!(st.min, 4.0);
                assert_eq!(st.max, 9.0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn varying_integers_become_stats_too() {
        let mut a = Report::new("t");
        a.section("s").u64("evals", 100);
        let mut b = Report::new("t");
        b.section("s").u64("evals", 104);
        let merged = merge_reports(&[a, b]);
        match merged.get("s", "evals") {
            Some(Value::Stats(st)) => assert_eq!(st.median, 102.0),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn single_run_is_identity() {
        let r = run(5.0, 10);
        assert_eq!(merge_reports(std::slice::from_ref(&r)), r);
    }
}
