//! The server's two content-addressed caches.
//!
//! * The **design cache** maps the FNV/SplitMix content hash of the
//!   POSTed netlist text to a prepared [`Design`]: the parsed netlist,
//!   its scan-inserted form, the [`Levelized`] packed view, and the
//!   collapsed fault list. These are the expensive, job-independent
//!   artifacts — every job kind starts from them, and
//!   [`rescue_atpg::Atpg::run_prepared`] guarantees reusing them is
//!   bit-identical to rebuilding.
//! * The **result cache** maps `(netlist text hash, job config hash)`
//!   to the finished canonical result line, so a repeated identical job
//!   skips the engines entirely.
//!
//! Both are bounded LRUs (monotonic-tick recency, O(n) eviction — the
//! caps are small) behind mutexes, with hit/miss/eviction counters
//! registered in the global [`rescue_obs::metrics`] registry under
//! `serve.cache.*`, which makes them visible on `/metrics` and exactly
//! gated by `bench-diff`.

use rescue_netlist::scan::insert_scan;
use rescue_netlist::{fnv1a64, BuildError, Fault, Levelized, Netlist};
use rescue_obs::metrics::Counter;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// A prepared design: everything about a netlist that every job kind
/// shares, built once per distinct netlist text and reused.
#[derive(Debug)]
pub struct Design {
    /// FNV/SplitMix hash of the netlist text as POSTed (cache key).
    pub text_hash: u64,
    /// Structural content hash of the parsed netlist
    /// ([`Netlist::content_hash`]), echoed in results so two texts that
    /// parse to the same structure are recognizably identical.
    pub content_hash: u64,
    /// The parsed pre-scan netlist.
    pub base: Netlist,
    /// Scan-inserted form; `None` when the design has no state (scan
    /// insertion requires at least one flip-flop). ATPG jobs need this.
    pub scanned: Option<rescue_netlist::ScanNetlist>,
    /// Levelized packed view of the scanned netlist (of `base` when
    /// there is no state), shared immutably across fault-sim workers.
    pub lev: Levelized,
    /// Collapsed stuck-at fault list for the same netlist as `lev`.
    pub faults: Vec<Fault>,
}

impl Design {
    /// Parse and prepare `text`. Errors are human-readable strings —
    /// this path faces untrusted input and must never panic.
    pub fn build(text: &str) -> Result<Design, String> {
        let base = rescue_netlist::text::parse(text)?;
        let content_hash = base.content_hash();
        let scanned = match insert_scan(&base) {
            Ok(s) => Some(s),
            Err(BuildError::NoState) => None,
            Err(e) => return Err(format!("scan insertion failed: {e}")),
        };
        let sim_netlist = scanned.as_ref().map(|s| &s.netlist).unwrap_or(&base);
        let lev = Levelized::new(sim_netlist);
        let faults = sim_netlist.collapse_faults();
        Ok(Design {
            text_hash: fnv1a64(text.as_bytes()),
            content_hash,
            base,
            scanned,
            lev,
            faults,
        })
    }
}

/// Bounded map with least-recently-used eviction. Recency is a
/// monotonic tick bumped on every hit; eviction scans for the minimum
/// (O(n), fine at the cache sizes the server uses).
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up `k`, refreshing its recency on a hit.
    pub fn get(&mut self, k: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(k).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    /// Insert `k → v`, evicting the least-recently-used entry when
    /// over capacity. Returns `true` when an entry was evicted.
    pub fn insert(&mut self, k: K, v: V) -> bool {
        self.tick += 1;
        self.map.insert(k, (self.tick, v));
        if self.map.len() <= self.cap {
            return false;
        }
        if let Some(oldest) = self
            .map
            .iter()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&oldest);
        }
        true
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The server's caches plus their `serve.cache.*` counters.
pub struct ServeCaches {
    designs: Mutex<LruCache<u64, Arc<Design>>>,
    results: Mutex<LruCache<(u64, u64), Arc<String>>>,
    design_hits: Arc<Counter>,
    design_misses: Arc<Counter>,
    result_hits: Arc<Counter>,
    result_misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl ServeCaches {
    /// Caches bounded to `design_cap` prepared designs and
    /// `result_cap` result lines, with counters registered globally.
    pub fn new(design_cap: usize, result_cap: usize) -> ServeCaches {
        let reg = rescue_obs::metrics::global();
        ServeCaches {
            designs: Mutex::new(LruCache::new(design_cap)),
            results: Mutex::new(LruCache::new(result_cap)),
            design_hits: reg.counter("serve.cache.design.hits"),
            design_misses: reg.counter("serve.cache.design.misses"),
            result_hits: reg.counter("serve.cache.result.hits"),
            result_misses: reg.counter("serve.cache.result.misses"),
            evictions: reg.counter("serve.cache.evictions"),
        }
    }

    /// Fetch the prepared design for `text`, building and caching it on
    /// a miss. Returns the design and whether this was a cache hit.
    pub fn design(&self, text: &str) -> Result<(Arc<Design>, bool), String> {
        let key = fnv1a64(text.as_bytes());
        if let Some(d) = self.designs.lock().expect("design cache lock").get(&key) {
            self.design_hits.inc();
            return Ok((d, true));
        }
        // Build outside the lock: parsing and levelizing a large
        // netlist must not block hits on other designs. Two racing
        // misses both build; last insert wins (identical content).
        self.design_misses.inc();
        let built = Arc::new(Design::build(text)?);
        let mut cache = self.designs.lock().expect("design cache lock");
        if cache.insert(key, Arc::clone(&built)) {
            self.evictions.inc();
        }
        Ok((built, false))
    }

    /// Look up a finished result line.
    pub fn result(&self, text_hash: u64, config_hash: u64) -> Option<Arc<String>> {
        let hit = self
            .results
            .lock()
            .expect("result cache lock")
            .get(&(text_hash, config_hash));
        match &hit {
            Some(_) => self.result_hits.inc(),
            None => self.result_misses.inc(),
        }
        hit
    }

    /// Store a finished result line.
    pub fn store_result(&self, text_hash: u64, config_hash: u64, line: Arc<String>) {
        if self
            .results
            .lock()
            .expect("result cache lock")
            .insert((text_hash, config_hash), line)
        {
            self.evictions.inc();
        }
    }

    /// `(designs cached, results cached)` — for `/stats.json`.
    pub fn sizes(&self) -> (usize, usize) {
        (
            self.designs.lock().expect("design cache lock").len(),
            self.results.lock().expect("result cache lock").len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert!(!c.insert(1, 10));
        assert!(!c.insert(2, 20));
        assert_eq!(c.get(&1), Some(10)); // refresh 1; 2 is now oldest
        assert!(c.insert(3, 30));
        assert_eq!(c.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn design_cache_hits_on_identical_text() {
        let caches = ServeCaches::new(4, 4);
        // Signals: inputs a=0 b=1, dff q=2, gate and=3.
        let text = "component c\ninput a\ninput b\ngate and 0 1\ndff q c 3\noutput o 3\n";
        let (d1, hit1) = caches.design(text).unwrap();
        let (d2, hit2) = caches.design(text).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&d1, &d2), "hit must return the cached Arc");
        assert!(d1.scanned.is_some());
        assert!(!d1.faults.is_empty());
    }

    #[test]
    fn design_build_rejects_garbage_without_panicking() {
        assert!(Design::build("gate and 0 99\n").is_err());
        assert!(Design::build("\x00\x01\x02").is_err());
    }
}
