//! ATPG-as-a-service: a zero-external-deps job server for the Rescue
//! engines.
//!
//! The ROADMAP's north star is the Rescue flow as a long-running
//! service rather than one-shot binaries. This crate is that serving
//! layer: a hand-rolled HTTP/1.1 daemon (on [`rescue_obs::http`],
//! `std::net` only) that accepts netlist/ATPG/fault-sim/lint jobs as
//! POSTed text netlists ([`rescue_netlist::text`]) plus a JSON config
//! line, runs them on the persistent in-process engine state, and
//! streams progress back as JSONL.
//!
//! What makes it a *service* rather than a CGI wrapper:
//!
//! * **content-addressed caching** ([`cache`]) — the FNV/SplitMix
//!   content hash of the netlist text keys a bounded LRU of prepared
//!   designs (parsed netlist, scan-inserted form, [`Levelized`] view,
//!   collapsed fault list), and `(netlist, config)` keys a result
//!   cache, so a repeated identical job skips the engines entirely;
//!   [`rescue_atpg::Atpg::run_prepared`] guarantees the reuse is
//!   bit-identical to a cold run;
//! * **admission control** ([`server`]) — a bounded worker pool plus
//!   wait queue; excess jobs shed immediately with `429`;
//! * **one telemetry surface** — the job endpoints are mounted next to
//!   the rescue-obs `/metrics`, `/snapshot.json` and `/healthz`
//!   routes, so the `serve.*` counters (cache hits, jobs, latency)
//!   and the engine counters are scraped together;
//! * **a byte-identity contract** ([`job`]) — every job ends with one
//!   canonical `{"type":"result",...}` line that is a deterministic
//!   function of (netlist, config); the CLI `rescue-serve run`
//!   produces the same bytes, and the e2e tests pin it.
//!
//! [`Levelized`]: rescue_netlist::Levelized
//!
//! # Example
//!
//! ```
//! use rescue_serve::{JobConfig, JobKind};
//!
//! let cfg = JobConfig::parse(r#"{"kind":"atpg","fill_seed":7}"#).unwrap();
//! assert_eq!(cfg.kind, JobKind::Atpg);
//! assert_eq!(cfg.fill_seed, 7);
//! // Identical configs hash identically (the result-cache key)…
//! assert_eq!(cfg.config_hash(), cfg.config_hash());
//! // …and thread count is a datapath knob, so it shares the entry.
//! let threads = JobConfig::parse(r#"{"kind":"atpg","fill_seed":7,"threads":4}"#).unwrap();
//! assert_eq!(cfg.config_hash(), threads.config_hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod server;

pub use cache::{Design, LruCache, ServeCaches};
pub use job::{run_job, JobConfig, JobKind};
pub use server::{JobServer, ServeOptions};

/// Enable the live telemetry hub (idempotent) — the server calls this
/// on start so engine progress shows up on `/metrics` immediately.
pub(crate) fn obs_enabled() {
    rescue_obs::live::global().set_enabled(true);
}
