//! The job server: HTTP surface, admission control, and the job
//! execution path.
//!
//! Endpoints:
//!
//! * `POST /jobs` — body is one JSON config line followed by a text
//!   netlist. Streams JSONL back: `{"type":"event",...}` progress lines
//!   (advisory — a cached job emits fewer of them) terminated by one
//!   canonical `{"type":"result",...}` line whose bytes are the
//!   determinism contract (see [`crate::job`]). Errors come back as a
//!   `{"type":"error",...}` line with an HTTP error status.
//! * `GET /stats.json` — server-specific state: jobs running/queued,
//!   cache sizes, totals.
//! * `GET /metrics`, `/snapshot.json`, `/healthz` — the shared
//!   telemetry surface ([`rescue_obs::server::route_telemetry`]), so
//!   one scrape sees the engine counters and the `serve.*` counters
//!   side by side.
//!
//! Admission control: at most `workers` jobs execute concurrently; up
//! to `queue_depth` more wait; anything beyond is shed immediately
//! with `429` and a `serve.jobs.shed` count. Shedding never blocks on
//! running jobs, and `/metrics` stays served (separate connections,
//! separate threads) while jobs run.

use crate::cache::ServeCaches;
use crate::job::{run_job, JobConfig};
use rescue_obs::http::{
    write_response, write_stream_head, HttpOptions, HttpServer, Request, Response,
};
use rescue_obs::json::JsonObj;
use rescue_obs::metrics::{Counter, Histogram};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Server tuning. `Default` suits tests and local runs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Jobs allowed to execute concurrently.
    pub workers: usize,
    /// Jobs allowed to wait for a worker before shedding starts.
    pub queue_depth: usize,
    /// Maximum accepted request body (config + netlist text).
    pub max_body: usize,
    /// Prepared designs kept in the design cache.
    pub design_cache: usize,
    /// Result lines kept in the result cache.
    pub result_cache: usize,
    /// Title echoed by `/snapshot.json`.
    pub title: String,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_depth: 8,
            max_body: 16 * 1024 * 1024,
            design_cache: 16,
            result_cache: 128,
            title: "rescue-serve".to_owned(),
        }
    }
}

/// Blocking admission gate: a counting semaphore with a bounded FIFO
/// wait queue. `enter` returns `None` (shed) once `queue_depth` jobs
/// are already waiting. Waiters hold numbered tickets and are admitted
/// strictly in arrival order, and a newcomer is only admitted directly
/// when nobody is queued — so a sustained stream of new arrivals can
/// never barge past queued jobs and starve them.
struct Gate {
    workers: usize,
    queue_depth: usize,
    state: Mutex<GateState>,
    cond: Condvar,
}

/// Gate state behind the mutex. `queued == next_ticket - serving`.
#[derive(Clone, Copy, Default)]
struct GateState {
    /// Jobs holding a permit.
    running: usize,
    /// Jobs waiting in [`Gate::enter`].
    queued: usize,
    /// Next queue ticket to hand out.
    next_ticket: u64,
    /// Ticket at the head of the queue (admitted next).
    serving: u64,
}

impl Gate {
    fn new(workers: usize, queue_depth: usize) -> Gate {
        Gate {
            workers: workers.max(1),
            queue_depth,
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
        }
    }

    /// Acquire a job slot, waiting in the bounded queue if needed.
    fn enter(self: &Arc<Self>) -> Option<GatePermit> {
        let mut st = self.state.lock().expect("gate lock");
        // Direct admission only when nobody is waiting; freed slots
        // belong to the head of the queue first.
        if st.queued == 0 && st.running < self.workers {
            st.running += 1;
            return Some(GatePermit(Arc::clone(self)));
        }
        if st.queued >= self.queue_depth {
            return None;
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queued += 1;
        while st.serving != ticket || st.running >= self.workers {
            st = self.cond.wait(st).expect("gate wait");
        }
        st.serving += 1;
        st.queued -= 1;
        st.running += 1;
        drop(st);
        // The next ticket holder may already be eligible (slots can
        // free back-to-back); it waits on this same condvar.
        self.cond.notify_all();
        Some(GatePermit(Arc::clone(self)))
    }

    /// `(running, queued)` right now.
    fn load(&self) -> (usize, usize) {
        let st = self.state.lock().expect("gate lock");
        (st.running, st.queued)
    }
}

/// RAII job slot; releasing admits the head of the wait queue.
struct GatePermit(Arc<Gate>);

impl Drop for GatePermit {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("gate lock");
        st.running -= 1;
        drop(st);
        // notify_all, not notify_one: only the head ticket can
        // proceed, and a single notify could land on a non-head
        // waiter that just goes back to sleep.
        self.0.cond.notify_all();
    }
}

/// Shared server state: caches, gate, counters.
struct State {
    caches: ServeCaches,
    gate: Arc<Gate>,
    title: String,
    jobs_accepted: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    jobs_shed: Arc<Counter>,
    job_ns: Arc<Histogram>,
}

impl State {
    fn new(opts: &ServeOptions) -> State {
        let reg = rescue_obs::metrics::global();
        State {
            caches: ServeCaches::new(opts.design_cache, opts.result_cache),
            gate: Arc::new(Gate::new(opts.workers, opts.queue_depth)),
            title: opts.title.clone(),
            jobs_accepted: reg.counter("serve.jobs.accepted"),
            jobs_completed: reg.counter("serve.jobs.completed"),
            jobs_failed: reg.counter("serve.jobs.failed"),
            jobs_shed: reg.counter("serve.jobs.shed"),
            job_ns: reg.histogram("serve.job.ns"),
        }
    }
}

/// A running job server. Dropping it shuts the listener down.
pub struct JobServer {
    inner: HttpServer,
}

impl JobServer {
    /// Bind `addr` (port 0 for ephemeral) and serve jobs.
    pub fn start(addr: &str, opts: ServeOptions) -> std::io::Result<JobServer> {
        crate::obs_enabled();
        let state = Arc::new(State::new(&opts));
        let http_opts = HttpOptions {
            max_body: opts.max_body,
            // Jobs hold their connection while running; admit enough
            // connections for all workers + queue + scrapers.
            max_connections: (opts.workers + opts.queue_depth + 8).max(16),
            ..HttpOptions::default()
        };
        let inner = HttpServer::start(
            addr,
            "rescue-serve",
            http_opts,
            move |req: Request, stream: &mut TcpStream| handle(&state, req, stream),
        )?;
        Ok(JobServer { inner })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stop accepting and drain. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn handle(state: &State, req: Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let head_only = req.is_head();
    if req.method == "POST" && req.path == "/jobs" {
        return serve_job(state, &req, stream);
    }
    if (req.method == "GET" || req.method == "HEAD") && req.path == "/stats.json" {
        let resp = Response::ok("application/json", stats_json(state));
        return write_response(stream, &resp, head_only);
    }
    let resp = rescue_obs::server::route_telemetry(&req, &state.title)
        .unwrap_or_else(|| Response::text("405 Method Not Allowed", "GET, HEAD or POST /jobs\n"));
    write_response(stream, &resp, head_only)
}

/// One event line of the JSONL stream (advisory, not cached).
fn event_line(name: &str, fill: impl FnOnce(&mut JsonObj)) -> String {
    let mut o = JsonObj::new();
    o.str("type", "event").str("name", name);
    fill(&mut o);
    let mut line = o.finish();
    line.push('\n');
    line
}

/// The full `POST /jobs` path: parse, admit, cache-lookup, run, stream.
fn serve_job(state: &State, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let body = String::from_utf8_lossy(&req.body);
    // First line: JSON config. Remainder: netlist text.
    let (config_line, netlist_text) = match body.split_once('\n') {
        Some(pair) => pair,
        None => (body.as_ref(), ""),
    };
    let cfg = match JobConfig::parse(config_line) {
        Ok(c) => c,
        Err(e) => return error_response(stream, "400 Bad Request", &e),
    };
    if netlist_text.trim().is_empty() {
        return error_response(stream, "400 Bad Request", "request has no netlist text");
    }

    // Admission before any expensive work: shed with 429 when the
    // queue is full. The permit covers the whole job, including the
    // design build — parsing a pathological netlist is work too.
    let permit = match state.gate.enter() {
        Some(p) => p,
        None => {
            state.jobs_shed.inc();
            return error_response(stream, "429 Too Many Requests", "job queue is full");
        }
    };
    state.jobs_accepted.inc();
    let t_job = Instant::now();

    // From here on the response is a 200 JSONL stream; job failures
    // become an error line inside the stream.
    write_stream_head(stream, "200 OK", "application/jsonl")?;
    if req.is_head() {
        return Ok(());
    }
    stream.write_all(
        event_line("serve.job.accepted", |o| {
            o.str("job", cfg.kind.name());
        })
        .as_bytes(),
    )?;

    let config_hash = cfg.config_hash();
    let result = run_cached(state, &cfg, config_hash, netlist_text, stream);
    drop(permit);

    match result {
        Ok(line) => {
            state.jobs_completed.inc();
            state.job_ns.record(t_job.elapsed().as_nanos() as u64);
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        Err(e) => {
            state.jobs_failed.inc();
            stream.write_all(error_line(&e).as_bytes())?;
        }
    }
    stream.flush()
}

/// Resolve the job through the result and design caches, emitting
/// advisory cache events on `stream` as they are known.
fn run_cached(
    state: &State,
    cfg: &JobConfig,
    config_hash: u64,
    netlist_text: &str,
    stream: &mut TcpStream,
) -> Result<Arc<String>, String> {
    let text_hash = rescue_netlist::fnv1a64(netlist_text.as_bytes());
    if let Some(line) = state.caches.result(text_hash, config_hash) {
        let _ = stream.write_all(
            event_line("serve.result.cache", |o| {
                o.bool("hit", true);
            })
            .as_bytes(),
        );
        return Ok(line);
    }
    let _ = stream.write_all(
        event_line("serve.result.cache", |o| {
            o.bool("hit", false);
        })
        .as_bytes(),
    );
    let (design, design_hit) = state.caches.design(netlist_text)?;
    let _ = stream.write_all(
        event_line("serve.design.cache", |o| {
            o.bool("hit", design_hit)
                .str("design", &format!("{:016x}", design.content_hash));
        })
        .as_bytes(),
    );
    let line = Arc::new(run_job(&design, cfg)?);
    state
        .caches
        .store_result(text_hash, config_hash, Arc::clone(&line));
    Ok(line)
}

fn error_line(message: &str) -> String {
    let mut o = JsonObj::new();
    o.str("type", "error").str("message", message);
    let mut line = o.finish();
    line.push('\n');
    line
}

/// A whole-response error (pre-stream): proper HTTP status, JSON body.
fn error_response(
    stream: &mut TcpStream,
    status: &'static str,
    message: &str,
) -> std::io::Result<()> {
    let resp = Response {
        status,
        content_type: "application/json",
        body: error_line(message),
    };
    write_response(stream, &resp, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn gate_hands_freed_slots_to_waiters_before_newcomers() {
        let gate = Arc::new(Gate::new(1, 4));
        let occupant = gate.enter().expect("occupant admitted");

        let waiter_ran = Arc::new(AtomicBool::new(false));
        let waiter = {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&waiter_ran);
            std::thread::spawn(move || {
                let permit = gate.enter().expect("waiter admitted");
                ran.store(true, Ordering::Release);
                drop(permit);
            })
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while gate.load() != (1, 1) {
            assert!(Instant::now() < deadline, "waiter never queued");
            std::thread::yield_now();
        }
        drop(occupant);

        // The newcomer queues behind the waiter's ticket, so by the
        // time it holds the (single) slot the waiter has already run.
        let newcomer = gate.enter().expect("newcomer admitted");
        assert!(
            waiter_ran.load(Ordering::Acquire),
            "newcomer barged past the queued waiter"
        );
        drop(newcomer);
        waiter.join().expect("waiter thread");
    }

    #[test]
    fn gate_sheds_when_queue_is_full() {
        let gate = Arc::new(Gate::new(1, 0));
        let permit = gate.enter().expect("admitted");
        assert!(gate.enter().is_none(), "queue_depth 0 must shed");
        drop(permit);
        assert!(gate.enter().is_some(), "freed slot must admit again");
    }
}

/// `/stats.json`: instantaneous server state (distinct from the
/// cumulative counters on `/metrics`).
fn stats_json(state: &State) -> String {
    let (running, queued) = state.gate.load();
    let (designs, results) = state.caches.sizes();
    let mut o = JsonObj::new();
    o.str("title", &state.title)
        .u64("jobs_running", running as u64)
        .u64("jobs_queued", queued as u64)
        .u64("designs_cached", designs as u64)
        .u64("results_cached", results as u64)
        .u64("jobs_accepted", state.jobs_accepted.get())
        .u64("jobs_completed", state.jobs_completed.get())
        .u64("jobs_failed", state.jobs_failed.get())
        .u64("jobs_shed", state.jobs_shed.get());
    o.finish()
}
