//! `rescue-serve` CLI.
//!
//! ```text
//! rescue-serve serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--title T]
//! rescue-serve run --config JSON NETLIST_FILE
//! ```
//!
//! `serve` starts the job daemon and prints the bound address (one
//! line, `listening on <addr>`) so scripts with `--addr 127.0.0.1:0`
//! can discover the ephemeral port; it then runs until killed.
//!
//! `run` executes one job locally — same parsing, same engines, same
//! canonical result line as the served path — and prints that line to
//! stdout. This is the CLI half of the served-vs-CLI byte-identity
//! contract the tests and the CI smoke job check.

use rescue_serve::{run_job, Design, JobConfig, JobServer, ServeOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        _ => {
            eprintln!(
                "usage: rescue-serve serve [--addr A] [--workers N] [--queue-depth N] [--title T]"
            );
            eprintln!("       rescue-serve run --config JSON NETLIST_FILE");
            ExitCode::from(2)
        }
    }
}

/// Value of a `--flag value` pair, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:9300".to_owned());
    let mut opts = ServeOptions::default();
    if let Some(w) = flag_value(args, "--workers").and_then(|v| v.parse().ok()) {
        opts.workers = w;
    }
    if let Some(q) = flag_value(args, "--queue-depth").and_then(|v| v.parse().ok()) {
        opts.queue_depth = q;
    }
    if let Some(t) = flag_value(args, "--title") {
        opts.title = t;
    }
    let server = match JobServer::start(&addr, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rescue-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Serve until killed; all work happens on the listener's threads.
    loop {
        std::thread::park();
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let config = flag_value(args, "--config").unwrap_or_else(|| r#"{"kind":"atpg"}"#.to_owned());
    let file = match args.last() {
        Some(f) if !f.starts_with("--") && flag_value(args, "--config").as_deref() != Some(f) => {
            f.clone()
        }
        _ => {
            eprintln!("rescue-serve run: missing netlist file");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rescue-serve run: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = JobConfig::parse(&config)
        .and_then(|cfg| Design::build(&text).map(|d| (d, cfg)))
        .and_then(|(design, cfg)| run_job(&design, &cfg));
    match outcome {
        Ok(line) => {
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rescue-serve run: {e}");
            ExitCode::FAILURE
        }
    }
}
