//! Job kinds, the JSON job configuration, and the job runners.
//!
//! A job request is a JSON config line followed by a text netlist
//! ([`rescue_netlist::text`]). The config selects the job kind and the
//! engine knobs; everything has a default, so `{"kind":"atpg"}` is a
//! complete config. Parsing uses the workspace's own
//! [`rescue_obs::json`] parser — no external dependencies.
//!
//! Every runner returns a single **canonical result line**: a JSON
//! object with `"type":"result"` whose bytes are a deterministic
//! function of (netlist, config). Wall-clock timings, thread counts,
//! and anything else nondeterministic are deliberately excluded — the
//! line is the byte-identity contract between the served path and the
//! CLI path (`rescue-serve run`), pinned by the e2e tests, and it is
//! what the result cache stores.

use crate::cache::Design;
use rescue_atpg::{Atpg, AtpgConfig, LaneShards, PodemConfig};
use rescue_netlist::{Fnv64, PatternBlock};
use rescue_obs::json::{self, JsonObj, JsonValue};
use rescue_obs::SplitMix64;

/// What to run against the POSTed netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Parse only; report structural statistics.
    Netlist,
    /// Full scan ATPG ([`rescue_atpg::Atpg`]).
    Atpg,
    /// Fault simulation of seeded random patterns.
    Fsim,
    /// DFT lint + SCOAP ([`rescue_lint`]).
    Lint,
}

impl JobKind {
    /// Wire name, as used in the JSON config and result lines.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Netlist => "netlist",
            JobKind::Atpg => "atpg",
            JobKind::Fsim => "fsim",
            JobKind::Lint => "lint",
        }
    }

    /// Parse a wire name.
    pub fn from_name(s: &str) -> Result<JobKind, String> {
        match s {
            "netlist" => Ok(JobKind::Netlist),
            "atpg" => Ok(JobKind::Atpg),
            "fsim" => Ok(JobKind::Fsim),
            "lint" => Ok(JobKind::Lint),
            other => Err(format!(
                "unknown job kind {other:?} (expected netlist|atpg|fsim|lint)"
            )),
        }
    }
}

/// Parsed job configuration. Field defaults match the engine defaults
/// ([`AtpgConfig::default`]), so an empty config object runs the same
/// flow the CLI tools run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobConfig {
    /// Job kind (`"kind"`, required).
    pub kind: JobKind,
    /// Worker threads (`"threads"`, 0 = auto). Datapath knob: results
    /// are bit-identical for any value, so it is excluded from
    /// [`JobConfig::config_hash`].
    pub threads: usize,
    /// Fault-sim lane width in words (`"lane_words"`, 1/4/8). Datapath
    /// knob, excluded from the hash like `threads`.
    pub lane_words: usize,
    /// ATPG random-fill seed (`"fill_seed"`).
    pub fill_seed: u64,
    /// ATPG cube merging (`"merge_cubes"`).
    pub merge_cubes: bool,
    /// ATPG merge window (`"merge_window"`).
    pub merge_window: usize,
    /// PODEM backtrack limit (`"max_backtracks"`).
    pub max_backtracks: usize,
    /// n-detect dropping (`"drop_after"`, 0 = off).
    pub drop_after: u32,
    /// ATPG static redundancy pre-pass (`"static_prepass"`).
    /// Vectors are invariant, but the pre-pass can soundly upgrade
    /// budget-`Aborted` faults to `Untestable`, which moves the result
    /// line's class counts and coverage — so unlike
    /// `threads`/`lane_words` it is **included** in
    /// [`JobConfig::config_hash`].
    pub static_prepass: bool,
    /// Fsim: number of 64-pattern blocks to simulate (`"patterns"`).
    pub patterns: usize,
    /// Fsim: pattern generator seed (`"seed"`).
    pub seed: u64,
}

impl JobConfig {
    /// The default config for `kind`.
    pub fn new(kind: JobKind) -> JobConfig {
        let atpg = AtpgConfig::default();
        JobConfig {
            kind,
            threads: 0,
            lane_words: 1,
            fill_seed: atpg.fill_seed,
            merge_cubes: atpg.merge_cubes,
            merge_window: atpg.merge_window,
            max_backtracks: PodemConfig::default().max_backtracks,
            drop_after: 0,
            static_prepass: atpg.static_prepass,
            patterns: 4,
            seed: 0x5eed,
        }
    }

    /// Parse a JSON config object. Unknown keys are ignored (forward
    /// compatibility); wrong types and unknown kinds are errors.
    pub fn parse(text: &str) -> Result<JobConfig, String> {
        let doc = json::parse(text).map_err(|e| format!("config is not valid JSON: {e}"))?;
        let obj = match &doc {
            JsonValue::Obj(_) => &doc,
            _ => return Err("config must be a JSON object".to_owned()),
        };
        let kind = match obj.get("kind").and_then(JsonValue::as_str) {
            Some(s) => JobKind::from_name(s)?,
            None => return Err("config is missing \"kind\"".to_owned()),
        };
        let mut cfg = JobConfig::new(kind);
        let usize_field = |name: &str, into: &mut usize| -> Result<(), String> {
            if let Some(v) = obj.get(name) {
                match v.as_int() {
                    Some(i) if i >= 0 && i <= usize::MAX as i128 => *into = i as usize,
                    _ => return Err(format!("{name:?} must be a non-negative integer")),
                }
            }
            Ok(())
        };
        let u64_field = |name: &str, into: &mut u64| -> Result<(), String> {
            if let Some(v) = obj.get(name) {
                match v.as_int() {
                    Some(i) if i >= 0 && i <= u64::MAX as i128 => *into = i as u64,
                    _ => return Err(format!("{name:?} must be a non-negative integer")),
                }
            }
            Ok(())
        };
        usize_field("threads", &mut cfg.threads)?;
        usize_field("lane_words", &mut cfg.lane_words)?;
        u64_field("fill_seed", &mut cfg.fill_seed)?;
        usize_field("merge_window", &mut cfg.merge_window)?;
        usize_field("max_backtracks", &mut cfg.max_backtracks)?;
        usize_field("patterns", &mut cfg.patterns)?;
        u64_field("seed", &mut cfg.seed)?;
        let mut drop_after = cfg.drop_after as usize;
        usize_field("drop_after", &mut drop_after)?;
        cfg.drop_after = u32::try_from(drop_after)
            .map_err(|_| "\"drop_after\" must fit in 32 bits".to_owned())?;
        if let Some(v) = obj.get("merge_cubes") {
            match v {
                JsonValue::Bool(b) => cfg.merge_cubes = *b,
                _ => return Err("\"merge_cubes\" must be a boolean".to_owned()),
            }
        }
        if let Some(v) = obj.get("static_prepass") {
            match v {
                JsonValue::Bool(b) => cfg.static_prepass = *b,
                _ => return Err("\"static_prepass\" must be a boolean".to_owned()),
            }
        }
        if cfg.patterns == 0 || cfg.patterns > 4096 {
            return Err("\"patterns\" must be in 1..=4096".to_owned());
        }
        Ok(cfg)
    }

    /// Hash of every config field that can change the result bytes.
    /// `threads` and `lane_words` are excluded: both are documented
    /// bit-identical datapath knobs, so jobs differing only in them
    /// share a result-cache entry. `static_prepass` is **included**:
    /// the vectors are invariant, but on designs where PODEM's budget
    /// aborts inside a proven-redundant cone the pre-pass upgrades the
    /// class to `Untestable`, moving the result line's
    /// `untestable`/`aborted`/`coverage` fields.
    pub fn config_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("rescue-serve-config-v1");
        h.write_str(self.kind.name());
        h.write_u64(self.fill_seed);
        h.write_u64(u64::from(self.merge_cubes));
        h.write_u64(self.merge_window as u64);
        h.write_u64(self.max_backtracks as u64);
        h.write_u64(u64::from(self.drop_after));
        h.write_u64(u64::from(self.static_prepass));
        h.write_u64(self.patterns as u64);
        h.write_u64(self.seed);
        h.finish()
    }

    fn atpg_config(&self) -> AtpgConfig {
        AtpgConfig {
            podem: PodemConfig {
                max_backtracks: self.max_backtracks,
            },
            fill_seed: self.fill_seed,
            merge_cubes: self.merge_cubes,
            merge_window: self.merge_window,
            threads: self.threads,
            lane_words: self.lane_words,
            static_prepass: self.static_prepass,
            drop_after: if self.drop_after > 1 {
                Some(self.drop_after)
            } else {
                None
            },
        }
    }
}

/// Run one job against a prepared design and return the canonical
/// result line (no trailing newline). Errors are human-readable and
/// never panic — this path faces untrusted input.
pub fn run_job(design: &Design, cfg: &JobConfig) -> Result<String, String> {
    match cfg.kind {
        JobKind::Netlist => Ok(netlist_result(design)),
        JobKind::Lint => Ok(lint_result(design)),
        JobKind::Atpg => atpg_result(design, cfg),
        JobKind::Fsim => fsim_result(design, cfg),
    }
}

/// Start a result object with the shared envelope fields.
fn result_head(design: &Design, job: JobKind) -> JsonObj {
    let mut o = JsonObj::new();
    o.str("type", "result")
        .str("job", job.name())
        .str("design", &format!("{:016x}", design.content_hash));
    o
}

fn netlist_result(design: &Design) -> String {
    let n = &design.base;
    let mut o = result_head(design, JobKind::Netlist);
    o.u64("inputs", n.inputs().len() as u64)
        .u64("outputs", n.outputs().len() as u64)
        .u64("gates", n.num_gates() as u64)
        .u64("dffs", n.num_dffs() as u64)
        .u64("components", n.num_components() as u64)
        .u64("faults", design.faults.len() as u64)
        .bool("scannable", design.scanned.is_some());
    o.finish()
}

fn lint_result(design: &Design) -> String {
    let name = format!("{:016x}", design.content_hash);
    let report = match &design.scanned {
        Some(s) => rescue_lint::lint_scan(s),
        None => rescue_lint::lint_netlist(&design.base),
    };
    let mut o = result_head(design, JobKind::Lint);
    o.u64("errors", report.count(rescue_lint::Severity::Error) as u64)
        .u64(
            "warnings",
            report.count(rescue_lint::Severity::Warning) as u64,
        )
        .u64("infos", report.count(rescue_lint::Severity::Info) as u64)
        .raw("report", &report.to_json(&name));
    o.finish()
}

fn atpg_result(design: &Design, cfg: &JobConfig) -> Result<String, String> {
    let scanned = design
        .scanned
        .as_ref()
        .ok_or("atpg requires a design with at least one flip-flop")?;
    let atpg = Atpg::new(scanned, cfg.atpg_config()).map_err(|e| e.to_string())?;
    let run = atpg
        .run_prepared(&design.lev, &design.faults)
        .map_err(|e| e.to_string())?;

    // Digest of the actual vector bits: two runs agree on this iff they
    // produced the same patterns, which makes served-vs-CLI
    // byte-identity a real engine-output check rather than a
    // formatting check.
    let mut digest = Fnv64::new();
    for v in &run.vectors {
        digest.write_u64(v.inputs.len() as u64);
        for &b in &v.inputs {
            digest.write(&[u8::from(b)]);
        }
        digest.write_u64(v.state.len() as u64);
        for &b in &v.state {
            digest.write(&[u8::from(b)]);
        }
    }

    use rescue_atpg::FaultClass;
    let mut o = result_head(design, JobKind::Atpg);
    o.u64("faults", run.stats.faults as u64)
        .u64("vectors", run.stats.vectors as u64)
        .u64("cells", run.stats.cells as u64)
        .u64("cycles", run.stats.cycles)
        .u64("detected", run.count(FaultClass::Detected) as u64)
        .u64("chain_tested", run.count(FaultClass::ChainTested) as u64)
        .u64("untestable", run.count(FaultClass::Untestable) as u64)
        .u64("aborted", run.count(FaultClass::Aborted) as u64)
        .f64("coverage", run.coverage())
        .str("vectors_digest", &format!("{:016x}", digest.finish()));
    Ok(o.finish())
}

fn fsim_result(design: &Design, cfg: &JobConfig) -> Result<String, String> {
    let sim_netlist = design
        .scanned
        .as_ref()
        .map(|s| &s.netlist)
        .unwrap_or(&design.base);
    let threads = rescue_atpg::resolve_threads(cfg.threads);
    let mut shards = LaneShards::new(&design.lev, threads, cfg.lane_words)
        .ok_or_else(|| format!("unsupported lane_words {}", cfg.lane_words))?;

    // Seeded random pattern blocks: deterministic for a given seed.
    let mut rng = SplitMix64::new(cfg.seed);
    let blocks: Vec<PatternBlock> = (0..cfg.patterns)
        .map(|_| {
            let mut b = PatternBlock::zero(sim_netlist);
            for w in b.inputs.iter_mut().chain(b.state.iter_mut()) {
                *w = rng.next_u64();
            }
            b
        })
        .collect();

    // Simulate with fault dropping, exactly like the ATPG flush loop:
    // detected faults leave `remaining` in canonical order. Each
    // detection records the fault's *global* first-detect pattern index
    // (group base + per-group lane, the same fold as the ATPG drop
    // loop) keyed by the fault's canonical position. `lane_words` only
    // changes how patterns are grouped, not which pattern detects a
    // fault first, so both the key and the value are width-invariant —
    // which the digest below must be, because `lane_words` is excluded
    // from [`JobConfig::config_hash`] and jobs differing only in it
    // share a result-cache entry.
    let mut remaining = design.faults.clone();
    let mut slots: Vec<usize> = (0..remaining.len()).collect();
    let mut first_detect: Vec<Option<u64>> = vec![None; design.faults.len()];
    for (group_idx, group) in blocks.chunks(cfg.lane_words).enumerate() {
        let group_base = (group_idx * cfg.lane_words * 64) as u64;
        let lanes = shards.detect_lanes_group(group, &remaining);
        if lanes.len() != remaining.len() {
            return Err("fault-sim lane count mismatch".to_owned());
        }
        let old = std::mem::take(&mut remaining);
        let old_slots = std::mem::take(&mut slots);
        for ((f, slot), lane) in old.into_iter().zip(old_slots).zip(&lanes) {
            match lane {
                Some(l) => first_detect[slot] = Some(group_base + u64::from(*l)),
                None => {
                    remaining.push(f);
                    slots.push(slot);
                }
            }
        }
    }

    // Digest `(canonical fault position, global first-detect pattern)`
    // pairs in canonical fault order.
    let mut detected = 0u64;
    let mut digest = Fnv64::new();
    for (slot, det) in first_detect.iter().enumerate() {
        if let Some(pattern) = det {
            detected += 1;
            digest.write_u64(slot as u64);
            digest.write_u64(*pattern);
        }
    }

    let mut o = result_head(design, JobKind::Fsim);
    o.u64("blocks", cfg.patterns as u64)
        .u64("faults", design.faults.len() as u64)
        .u64("detected", detected)
        .u64("undetected", design.faults.len() as u64 - detected)
        .str("detect_digest", &format!("{:016x}", digest.finish()));
    Ok(o.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_with_defaults_and_overrides() {
        let cfg = JobConfig::parse(r#"{"kind":"atpg"}"#).unwrap();
        assert_eq!(cfg.kind, JobKind::Atpg);
        assert_eq!(cfg, JobConfig::new(JobKind::Atpg));

        let cfg = JobConfig::parse(
            r#"{"kind":"fsim","patterns":8,"seed":7,"threads":2,"merge_cubes":false}"#,
        )
        .unwrap();
        assert_eq!(cfg.kind, JobKind::Fsim);
        assert_eq!(cfg.patterns, 8);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 2);
        assert!(!cfg.merge_cubes);
    }

    #[test]
    fn config_rejects_bad_input() {
        assert!(JobConfig::parse("not json").is_err());
        assert!(JobConfig::parse("[]").is_err());
        assert!(JobConfig::parse(r#"{"kind":"noodle"}"#).is_err());
        assert!(JobConfig::parse(r#"{}"#).is_err());
        assert!(JobConfig::parse(r#"{"kind":"atpg","threads":-1}"#).is_err());
        assert!(JobConfig::parse(r#"{"kind":"fsim","patterns":0}"#).is_err());
        assert!(JobConfig::parse(r#"{"kind":"atpg","merge_cubes":3}"#).is_err());
        assert!(JobConfig::parse(r#"{"kind":"atpg","static_prepass":"yes"}"#).is_err());
    }

    #[test]
    fn static_prepass_parses_and_reaches_the_engine_config() {
        let cfg = JobConfig::parse(r#"{"kind":"atpg","static_prepass":true}"#).unwrap();
        assert!(cfg.static_prepass);
        assert!(cfg.atpg_config().static_prepass);
        assert!(!JobConfig::new(JobKind::Atpg).static_prepass);
    }

    #[test]
    fn config_hash_ignores_datapath_knobs_only() {
        let base = JobConfig::new(JobKind::Atpg);
        let mut threads = base.clone();
        threads.threads = 7;
        threads.lane_words = 4;
        assert_eq!(base.config_hash(), threads.config_hash());

        let mut seeded = base.clone();
        seeded.fill_seed = 1;
        assert_ne!(base.config_hash(), seeded.config_hash());
        let mut other_kind = base.clone();
        other_kind.kind = JobKind::Lint;
        assert_ne!(base.config_hash(), other_kind.config_hash());
        // The pre-pass can move the result line's class counts on
        // budget-limited designs, so it must key its own cache entry.
        let mut prepass = base.clone();
        prepass.static_prepass = true;
        assert_ne!(base.config_hash(), prepass.config_hash());
    }
}
