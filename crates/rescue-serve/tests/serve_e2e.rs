//! End-to-end tests for the job server: served-vs-CLI byte identity,
//! result-cache speedup, deterministic 429 shedding, malformed-input
//! robustness, and the telemetry surface staying scrapeable.
//!
//! The `serve.*` counters live in the process-global metrics registry,
//! which every server in this (multi-threaded) test binary shares —
//! so counter assertions check monotone deltas, while per-response
//! guarantees use the JSONL event lines, which are per-connection and
//! deterministic.

use rescue_model::{build_pipeline, ModelParams, Variant};
use rescue_netlist::text;
use rescue_serve::{run_job, Design, JobConfig, JobServer, ServeOptions};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// POST a job; returns `(status line, body)`.
fn post_job(addr: SocketAddr, config: &str, netlist: &str) -> (String, String) {
    let body = format!("{config}\n{netlist}");
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, resp_body) = response.split_once("\r\n\r\n").expect("terminator");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, resp_body.to_owned())
}

fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("terminator");
    (
        head.lines().next().unwrap_or_default().to_owned(),
        body.to_owned(),
    )
}

/// The final `{"type":"result"...}` line of a JSONL job response.
fn result_line(body: &str) -> Option<&str> {
    body.lines()
        .rev()
        .find(|l| l.starts_with("{\"type\":\"result\""))
}

/// Whether the response carried `{"type":"event","name":<name>,...,"hit":<hit>}`.
fn saw_cache_event(body: &str, name: &str, hit: bool) -> bool {
    body.lines().any(|l| {
        l.contains(&format!("\"name\":\"{name}\"")) && l.contains(&format!("\"hit\":{hit}"))
    })
}

fn model_text() -> String {
    text::to_text(&build_pipeline(&ModelParams::tiny(), Variant::Rescue).netlist)
}

fn u64_field(json: &str, key: &str) -> u64 {
    use rescue_obs::json::{parse, JsonValue};
    match parse(json).expect("stats json parses").get(key) {
        Some(JsonValue::Int(i)) => *i as u64,
        other => panic!("missing/odd {key}: {other:?}"),
    }
}

#[test]
fn served_atpg_is_byte_identical_to_cli_and_cached_10x_faster() {
    let netlist = model_text();
    let config = r#"{"kind":"atpg","threads":1}"#;

    // The CLI path: same engines, no server.
    let cli_line = {
        let design = Design::build(&netlist).expect("design builds");
        let cfg = JobConfig::parse(config).expect("config parses");
        run_job(&design, &cfg).expect("job runs")
    };

    let mut server =
        JobServer::start("127.0.0.1:0", ServeOptions::default()).expect("server starts");
    let addr = server.addr();

    let t_cold = Instant::now();
    let (status, body) = post_job(addr, config, &netlist);
    let cold = t_cold.elapsed();
    assert!(status.contains("200"), "{status}");
    assert!(
        saw_cache_event(&body, "serve.result.cache", false),
        "{body}"
    );
    let served = result_line(&body).expect("result line").to_owned();
    assert_eq!(
        served, cli_line,
        "served result must be byte-identical to the CLI run"
    );

    // Repeat the identical job three times: all hits, byte-identical,
    // and the fastest warm round-trip is ≥ 10× faster than cold.
    let mut best_warm = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let (status, body) = post_job(addr, config, &netlist);
        best_warm = best_warm.min(t.elapsed());
        assert!(status.contains("200"), "{status}");
        assert!(saw_cache_event(&body, "serve.result.cache", true), "{body}");
        assert_eq!(result_line(&body), Some(served.as_str()));
    }
    assert!(
        best_warm * 10 <= cold,
        "cache hit not ≥10× faster: cold {cold:?}, best warm {best_warm:?}"
    );

    // Same netlist, different semantic config: a different cache entry.
    let (_, body) = post_job(
        addr,
        r#"{"kind":"atpg","threads":1,"fill_seed":9}"#,
        &netlist,
    );
    assert!(
        saw_cache_event(&body, "serve.result.cache", false),
        "{body}"
    );
    // But the design cache hits — the netlist text is unchanged.
    assert!(saw_cache_event(&body, "serve.design.cache", true), "{body}");

    server.shutdown();
}

#[test]
fn every_job_kind_serves_a_deterministic_result() {
    let netlist = model_text();
    let mut server =
        JobServer::start("127.0.0.1:0", ServeOptions::default()).expect("server starts");
    let addr = server.addr();
    for config in [
        r#"{"kind":"netlist"}"#,
        r#"{"kind":"lint"}"#,
        r#"{"kind":"fsim","patterns":2,"threads":1}"#,
    ] {
        let (status, body) = post_job(addr, config, &netlist);
        assert!(status.contains("200"), "{config}: {status}");
        let first = result_line(&body).expect("result line").to_owned();
        let (_, body2) = post_job(addr, config, &netlist);
        assert_eq!(
            result_line(&body2),
            Some(first.as_str()),
            "{config} not deterministic"
        );
        assert!(saw_cache_event(&body2, "serve.result.cache", true));
    }
    server.shutdown();
}

#[test]
fn fsim_result_is_lane_width_invariant() {
    // `lane_words` is excluded from the config hash (a pure datapath
    // knob), so jobs differing only in it share a result-cache entry —
    // which is only sound if the canonical result line, including the
    // detect digest, is identical across lane widths.
    let design = Design::build(&model_text()).expect("design builds");
    let mut lines = Vec::new();
    for lane_words in [1usize, 4, 8] {
        let cfg = JobConfig::parse(&format!(
            r#"{{"kind":"fsim","patterns":8,"seed":7,"threads":1,"lane_words":{lane_words}}}"#
        ))
        .expect("config parses");
        lines.push(run_job(&design, &cfg).expect("job runs"));
    }
    assert!(u64_field(&lines[0], "detected") > 0, "{}", lines[0]);
    assert_eq!(lines[0], lines[1], "lane_words=4 changed the result line");
    assert_eq!(lines[0], lines[2], "lane_words=8 changed the result line");
}

#[test]
fn malformed_jobs_get_4xx_and_the_server_survives() {
    let mut server =
        JobServer::start("127.0.0.1:0", ServeOptions::default()).expect("server starts");
    let addr = server.addr();

    // Bad config line.
    let (status, body) = post_job(addr, "this is not json", "input a\n");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("\"type\":\"error\""), "{body}");

    // Good config, empty netlist.
    let (status, _) = post_job(addr, r#"{"kind":"netlist"}"#, "");
    assert!(status.contains("400"), "{status}");

    // Good config, garbage netlist: admitted, fails inside the stream.
    let (status, body) = post_job(addr, r#"{"kind":"netlist"}"#, "gate and 0 99\n");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"type\":\"error\""), "{body}");

    // ATPG on a stateless design is a job error, not a crash.
    let (status, body) = post_job(
        addr,
        r#"{"kind":"atpg"}"#,
        "component c\ninput a\ngate not 0\noutput o 1\n",
    );
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("flip-flop"), "{body}");

    // The server is still alive and scrapeable.
    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("rescue_serve_jobs_failed_total"), "{body}");
    let (status, _) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    server.shutdown();
}

#[test]
fn overfull_queue_sheds_with_429_while_metrics_stay_scrapeable() {
    let netlist = model_text();
    let opts = ServeOptions {
        workers: 1,
        queue_depth: 0,
        ..ServeOptions::default()
    };
    let mut server = JobServer::start("127.0.0.1:0", opts).expect("server starts");
    let addr = server.addr();
    let config = r#"{"kind":"atpg","threads":1}"#;

    // Vary fill_seed per attempt so the occupying job never comes from
    // the result cache (a cached job would finish instantly).
    let mut shed_seen = false;
    for attempt in 0..5u64 {
        let occupant_cfg = format!(r#"{{"kind":"atpg","threads":1,"fill_seed":{attempt}}}"#);
        let netlist_clone = netlist.clone();
        let occupant = std::thread::spawn(move || post_job(addr, &occupant_cfg, &netlist_clone));

        // Wait until the worker is actually busy.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            let (_, stats) = http_get(addr, "/stats.json");
            if u64_field(&stats, "jobs_running") >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // While the job runs, /metrics answers.
        let (status, _) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");

        let (status, body) = post_job(addr, config, &netlist);
        let (occ_status, _) = occupant.join().expect("occupant thread");
        assert!(occ_status.contains("200"), "{occ_status}");
        if status.contains("429") {
            assert!(body.contains("queue is full"), "{body}");
            shed_seen = true;
            break;
        }
        // The occupant finished before our probe landed; retry.
        assert!(status.contains("200"), "unexpected status {status}");
    }
    assert!(shed_seen, "never observed a 429 shed in 5 attempts");

    // Shedding is counted and the server still works afterwards.
    let (_, stats) = http_get(addr, "/stats.json");
    assert!(u64_field(&stats, "jobs_shed") >= 1, "{stats}");
    let (status, body) = post_job(addr, r#"{"kind":"netlist"}"#, &netlist);
    assert!(status.contains("200"), "{status}");
    assert!(result_line(&body).is_some(), "{body}");
    server.shutdown();
}

#[test]
fn serve_counters_are_monotone_across_jobs() {
    let netlist = model_text();
    let mut server =
        JobServer::start("127.0.0.1:0", ServeOptions::default()).expect("server starts");
    let addr = server.addr();

    let (_, before) = http_get(addr, "/stats.json");
    let accepted0 = u64_field(&before, "jobs_accepted");
    let completed0 = u64_field(&before, "jobs_completed");

    for _ in 0..3 {
        let (status, _) = post_job(addr, r#"{"kind":"netlist"}"#, &netlist);
        assert!(status.contains("200"), "{status}");
    }

    let (_, after) = http_get(addr, "/stats.json");
    // Global counters are shared process-wide, so other tests may also
    // bump them: assert our floor, not an exact count.
    assert!(
        u64_field(&after, "jobs_accepted") >= accepted0 + 3,
        "{after}"
    );
    assert!(
        u64_field(&after, "jobs_completed") >= completed0 + 3,
        "{after}"
    );
    server.shutdown();
}
