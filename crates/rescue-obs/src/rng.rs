//! Seedable SplitMix64 generator.
//!
//! The build sandbox has no network access, so the workspace cannot pull
//! the `rand` crate; every randomized path (don't-care fill, trace
//! generation, fault sampling, randomized tests) runs on this generator
//! instead. SplitMix64 passes BigCrush, needs one u64 of state, and two
//! generators with the same seed produce identical streams on every
//! platform — which is what the determinism guards in the test suite
//! rely on.

/// A seedable SplitMix64 pseudo-random generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of entropy).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }

    /// Sample `k` distinct elements uniformly without replacement (a
    /// partial Fisher–Yates over indices). Returns fewer when the slice
    /// is shorter than `k`; order of the sample is the draw order.
    pub fn choose_multiple<T: Clone>(&mut self, xs: &[T], k: usize) -> Vec<T> {
        let k = k.min(xs.len());
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.below(idx.len() - i);
            idx.swap(i, j);
            out.push(xs[idx[i]].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::new(1);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let f = hits as f64 / 20_000.0;
        assert!((f - 0.3).abs() < 0.02, "fraction {f}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let xs: Vec<u32> = (0..20).collect();
        let mut r = SplitMix64::new(5);
        let sample = r.choose_multiple(&xs, 8);
        assert_eq!(sample.len(), 8);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8, "sample must be distinct");
        assert_eq!(r.choose_multiple(&xs, 50).len(), 20);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut xs: Vec<u32> = (0..50).collect();
        let mut r = SplitMix64::new(9);
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
