//! Span/event/counter tracing with monotonic timestamps, a JSONL sink,
//! and an in-memory record buffer for timeline export.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; dropping the guard closes
//! the span, folds its duration into the per-span-name summary, and —
//! when a sink is attached — appends one JSON object per line to the
//! trace file. Timestamps are nanoseconds since the tracer's creation
//! (monotonic, from [`Instant`]), so a trace is self-consistent even
//! though it carries no wall-clock times. Every record also carries a
//! small per-thread id so the Figure 9 thread fan-out renders as
//! separate tracks.
//!
//! Besides spans there are point [`Tracer::event`]s and numeric
//! [`Tracer::counter`] samples; counters become counter tracks in the
//! Perfetto export ([`crate::perfetto`]).
//!
//! Deep engine code opens spans through the process-global tracer
//! ([`global`] / [`span`]) so experiment drivers don't have to thread a
//! handle through every API. The global starts disabled; until a bench
//! binary enables it, a span open/close is one atomic load.

use crate::json::JsonObj;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Flush the JSONL sink every this many lines, so a run that dies
/// mid-flight (panic, kill, OOM) still leaves a parseable trace file
/// missing at most the newest few records.
const FLUSH_EVERY_LINES: u64 = 32;

/// Sink buffer capacity. Large enough that `BufWriter` never fills up
/// between explicit line-boundary flushes, so a flush can never land
/// mid-line and every flushed prefix of the file is valid JSONL.
const SINK_BUF_BYTES: usize = 64 * 1024;

/// A JSONL sink: the buffered writer plus a line counter driving the
/// periodic line-aligned flush.
#[derive(Debug)]
struct Sink {
    w: BufWriter<File>,
    lines: u64,
}

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Monotonically increasing thread ids, assigned on first trace use per
/// thread. Id 1 is whichever thread traces first (the main thread in
/// practice); 0 is never assigned.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Aggregated statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry in nanoseconds.
    pub max_ns: u64,
}

/// One recorded trace entry, kept in memory when recording is enabled
/// (see [`Tracer::set_record`]). This is the input to the Perfetto
/// converter.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// A closed span.
    Span {
        /// Span name.
        name: String,
        /// Start, nanoseconds since the tracer epoch.
        ts_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Nesting depth at open.
        depth: u64,
        /// Originating thread.
        tid: u64,
    },
    /// A point event.
    Event {
        /// Event name.
        name: String,
        /// Timestamp, nanoseconds since the tracer epoch.
        ts_ns: u64,
        /// Originating thread.
        tid: u64,
        /// Free-form string fields.
        fields: Vec<(String, String)>,
    },
    /// A numeric counter sample (one point on a counter track).
    Counter {
        /// Counter (track) name.
        name: String,
        /// Timestamp, nanoseconds since the tracer epoch.
        ts_ns: u64,
        /// Sampled value.
        value: f64,
        /// Originating thread.
        tid: u64,
    },
}

/// A span/event/counter tracer. See the module docs.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    recording: AtomicBool,
    epoch: Instant,
    sink: Mutex<Option<Sink>>,
    stats: Mutex<BTreeMap<String, SpanStat>>,
    records: Mutex<Vec<TraceRecord>>,
}

impl Drop for Tracer {
    fn drop(&mut self) {
        // Local tracers (tests, tools) flush their sink on the way out;
        // the process-global tracer is covered by the panic hook and
        // the periodic flush instead, since statics never drop.
        self.flush();
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A new, disabled tracer with no sink.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            recording: AtomicBool::new(false),
            epoch: Instant::now(),
            sink: Mutex::new(None),
            stats: Mutex::new(BTreeMap::new()),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Turn span collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Keep every span/event/counter in memory (for [`take_records`] /
    /// Perfetto export) in addition to any JSONL sink. Also enables the
    /// tracer.
    ///
    /// [`take_records`]: Tracer::take_records
    pub fn set_record(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
        if on {
            self.set_enabled(true);
        }
    }

    /// Whether in-memory recording is on.
    pub fn recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Drain the in-memory record buffer.
    pub fn take_records(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock().expect("tracer records poisoned"))
    }

    /// Attach a JSONL sink at `path` (truncates) and enable the tracer.
    ///
    /// Attaching a sink to the process-global tracer also installs (a
    /// chained) panic hook that flushes it, so a panicking run still
    /// leaves a parseable trace file.
    pub fn set_sink_path(&self, path: &str) -> std::io::Result<()> {
        let f = File::create(path)?;
        *self.sink.lock().expect("tracer sink poisoned") = Some(Sink {
            w: BufWriter::with_capacity(SINK_BUF_BYTES, f),
            lines: 0,
        });
        self.set_enabled(true);
        if std::ptr::eq(self, global()) {
            install_panic_flush();
        }
        Ok(())
    }

    /// Nanoseconds since the tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span. Close it by dropping the returned guard.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                tracer: self,
                name: String::new(),
                start_ns: 0,
                depth: 0,
                active: false,
            };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            tracer: self,
            name: name.to_owned(),
            start_ns: self.now_ns(),
            depth,
            active: true,
        }
    }

    /// Emit a point event with optional string fields.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        let tid = thread_id();
        let mut o = JsonObj::new();
        o.str("type", "event")
            .str("name", name)
            .u64("ts_ns", ts_ns)
            .u64("depth", DEPTH.with(|d| d.get()))
            .u64("tid", tid);
        for (k, v) in fields {
            o.str(k, v);
        }
        self.write_line(&o.finish());
        if self.recording() {
            self.push_record(TraceRecord::Event {
                name: name.to_owned(),
                ts_ns,
                tid,
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                    .collect(),
            });
        }
    }

    /// Sample a counter track: one (name, value) point at the current
    /// time. Cheap no-op (one atomic load) while the tracer is disabled,
    /// so engines may call it from inner loops.
    pub fn counter(&self, name: &str, value: f64) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        let tid = thread_id();
        let mut o = JsonObj::new();
        o.str("type", "counter")
            .str("name", name)
            .u64("ts_ns", ts_ns)
            .f64("value", value)
            .u64("tid", tid);
        self.write_line(&o.finish());
        if self.recording() {
            self.push_record(TraceRecord::Counter {
                name: name.to_owned(),
                ts_ns,
                value,
                tid,
            });
        }
    }

    fn push_record(&self, r: TraceRecord) {
        self.records
            .lock()
            .expect("tracer records poisoned")
            .push(r);
    }

    fn close_span(&self, name: &str, start_ns: u64, depth: u64) {
        let end_ns = self.now_ns();
        let dur = end_ns.saturating_sub(start_ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        {
            let mut stats = self.stats.lock().expect("tracer stats poisoned");
            let st = stats.entry(name.to_owned()).or_insert_with(|| SpanStat {
                name: name.to_owned(),
                ..SpanStat::default()
            });
            st.count += 1;
            st.total_ns += dur;
            st.max_ns = st.max_ns.max(dur);
        }
        let tid = thread_id();
        let mut o = JsonObj::new();
        o.str("type", "span")
            .str("name", name)
            .u64("ts_ns", start_ns)
            .u64("dur_ns", dur)
            .u64("depth", depth)
            .u64("tid", tid);
        self.write_line(&o.finish());
        if self.recording() {
            self.push_record(TraceRecord::Span {
                name: name.to_owned(),
                ts_ns: start_ns,
                dur_ns: dur,
                depth,
                tid,
            });
        }
    }

    fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().expect("tracer sink poisoned");
        if let Some(s) = sink.as_mut() {
            let _ = writeln!(s.w, "{line}");
            s.lines += 1;
            if s.lines.is_multiple_of(FLUSH_EVERY_LINES) {
                let _ = s.w.flush();
            }
        }
    }

    /// Flush the sink (call before exiting).
    pub fn flush(&self) {
        // A poisoned mutex here means the panic hook is flushing after
        // a panic inside the sink critical section; recover the guard
        // rather than double-panic.
        let mut guard = match self.sink.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(s) = guard.as_mut() {
            let _ = s.w.flush();
        }
    }

    /// Per-name span summary, sorted by name.
    pub fn summary(&self) -> Vec<SpanStat> {
        self.stats
            .lock()
            .expect("tracer stats poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Current span nesting depth on this thread (0 outside all spans).
    pub fn current_depth(&self) -> u64 {
        DEPTH.with(|d| d.get())
    }
}

/// RAII guard for an open span; the span closes when this drops.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: String,
    start_ns: u64,
    depth: u64,
    active: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.active {
            self.tracer
                .close_span(&self.name, self.start_ns, self.depth);
        }
    }
}

/// The process-global tracer (created disabled).
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

/// Chain a panic hook (once) that flushes the global tracer's sink, so
/// partial runs still yield parseable JSONL.
fn install_panic_flush() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            global().flush();
            prev(info);
        }));
    });
}

/// Open a span on the global tracer.
///
/// ```
/// let _s = rescue_obs::span("table3.atpg");
/// // ... phase work ...
/// ```
pub fn span(name: &str) -> SpanGuard<'static> {
    global().span(name)
}

/// Sample a counter on the global tracer (no-op while disabled).
pub fn counter(name: &str, value: f64) {
    global().counter(name, value);
}
