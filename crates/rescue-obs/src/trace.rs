//! Span/event tracing with monotonic timestamps and a JSONL sink.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; dropping the guard closes
//! the span, folds its duration into the per-name summary, and — when a
//! sink is attached — appends one JSON object per line to the trace
//! file. Timestamps are nanoseconds since the tracer's creation
//! (monotonic, from [`Instant`]), so a trace is self-consistent even
//! though it carries no wall-clock times.
//!
//! Deep engine code opens spans through the process-global tracer
//! ([`global`] / [`span`]) so experiment drivers don't have to thread a
//! handle through every API. The global starts disabled; until a bench
//! binary enables it, a span open/close is one atomic load.

use crate::json::JsonObj;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// Aggregated statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry in nanoseconds.
    pub max_ns: u64,
}

/// A span/event tracer. See the module docs.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    sink: Mutex<Option<BufWriter<File>>>,
    stats: Mutex<BTreeMap<String, SpanStat>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A new, disabled tracer with no sink.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            sink: Mutex::new(None),
            stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turn span collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Attach a JSONL sink at `path` (truncates) and enable the tracer.
    pub fn set_sink_path(&self, path: &str) -> std::io::Result<()> {
        let f = File::create(path)?;
        *self.sink.lock().expect("tracer sink poisoned") = Some(BufWriter::new(f));
        self.set_enabled(true);
        Ok(())
    }

    /// Nanoseconds since the tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span. Close it by dropping the returned guard.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                tracer: self,
                name: String::new(),
                start_ns: 0,
                depth: 0,
                active: false,
            };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            tracer: self,
            name: name.to_owned(),
            start_ns: self.now_ns(),
            depth,
            active: true,
        }
    }

    /// Emit a point event with optional string fields.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        if !self.enabled() {
            return;
        }
        let mut o = JsonObj::new();
        o.str("type", "event")
            .str("name", name)
            .u64("ts_ns", self.now_ns())
            .u64("depth", DEPTH.with(|d| d.get()));
        for (k, v) in fields {
            o.str(k, v);
        }
        self.write_line(&o.finish());
    }

    fn close_span(&self, name: &str, start_ns: u64, depth: u64) {
        let end_ns = self.now_ns();
        let dur = end_ns.saturating_sub(start_ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        {
            let mut stats = self.stats.lock().expect("tracer stats poisoned");
            let st = stats.entry(name.to_owned()).or_insert_with(|| SpanStat {
                name: name.to_owned(),
                ..SpanStat::default()
            });
            st.count += 1;
            st.total_ns += dur;
            st.max_ns = st.max_ns.max(dur);
        }
        let mut o = JsonObj::new();
        o.str("type", "span")
            .str("name", name)
            .u64("ts_ns", start_ns)
            .u64("dur_ns", dur)
            .u64("depth", depth);
        self.write_line(&o.finish());
    }

    fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().expect("tracer sink poisoned");
        if let Some(w) = sink.as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    /// Flush the sink (call before exiting).
    pub fn flush(&self) {
        if let Some(w) = self.sink.lock().expect("tracer sink poisoned").as_mut() {
            let _ = w.flush();
        }
    }

    /// Per-name span summary, sorted by name.
    pub fn summary(&self) -> Vec<SpanStat> {
        self.stats
            .lock()
            .expect("tracer stats poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Current span nesting depth on this thread (0 outside all spans).
    pub fn current_depth(&self) -> u64 {
        DEPTH.with(|d| d.get())
    }
}

/// RAII guard for an open span; the span closes when this drops.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: String,
    start_ns: u64,
    depth: u64,
    active: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.active {
            self.tracer
                .close_span(&self.name, self.start_ns, self.depth);
        }
    }
}

/// The process-global tracer (created disabled).
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

/// Open a span on the global tracer.
///
/// ```
/// let _s = rescue_obs::span("table3.atpg");
/// // ... phase work ...
/// ```
pub fn span(name: &str) -> SpanGuard<'static> {
    global().span(name)
}
