//! Minimal hand-rolled JSON serialization and parsing (the sandbox is
//! offline, so no serde). Serialization covers what the tracer and
//! report need: objects, arrays, strings, integers, floats, booleans.
//! Parsing ([`parse`]) covers full JSON and backs the Perfetto
//! converter and the `bench-diff` regression gate, which both consume
//! documents this module emitted.

use std::fmt::Write as _;

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` is Rust's shortest round-trip formatting; always contains
        // a digit, never an empty string.
        let s = format!("{v}");
        // Guard against "inf"-style output slipping through.
        if s.parse::<f64>().is_ok() {
            s
        } else {
            "null".to_owned()
        }
    } else {
        "null".to_owned()
    }
}

/// Incremental JSON object builder.
///
/// ```
/// use rescue_obs::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("name", "podem").u64("backtracks", 17);
/// assert_eq!(o.finish(), r#"{"name":"podem","backtracks":17}"#);
/// ```
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// Start an object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`null` if not finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-serialized JSON value verbatim.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Add an array of unsigned integers.
    pub fn arr_u64(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialize a list of pre-serialized JSON values as a JSON array.
pub fn array(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(it);
    }
    s.push(']');
    s
}

/// A parsed JSON value.
///
/// Integers without a fraction or exponent are kept exact in
/// [`JsonValue::Int`] (i128 covers the full u64 range), so counter
/// comparisons in `bench-diff` never round through f64. Object keys keep
/// insertion order; duplicate keys are preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.` or an exponent.
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first occurrence), if this is an
    /// object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 if numeric (`Int` converts lossily).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an exact integer if it is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing
/// else). Returns a byte-offset error message on malformed input.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let v = p_value(b, &mut i)?;
    p_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(v)
}

fn p_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn p_value(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
    p_ws(b, i);
    match b.get(*i) {
        Some(b'{') => p_object(b, i),
        Some(b'[') => p_array(b, i),
        Some(b'"') => Ok(JsonValue::Str(p_string(b, i)?)),
        Some(b't') => p_lit(b, i, "true", JsonValue::Bool(true)),
        Some(b'f') => p_lit(b, i, "false", JsonValue::Bool(false)),
        Some(b'n') => p_lit(b, i, "null", JsonValue::Null),
        Some(_) => p_number(b, i),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn p_lit(b: &[u8], i: &mut usize, word: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn p_number(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
    let start = *i;
    let mut integral = true;
    while let Some(&c) = b.get(*i) {
        match c {
            b'0'..=b'9' | b'-' => {}
            b'+' | b'.' | b'e' | b'E' => integral = false,
            _ => break,
        }
        *i += 1;
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    if integral {
        if let Ok(v) = text.parse::<i128>() {
            return Ok(JsonValue::Int(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number {text:?} at offset {start}"))
}

fn p_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        let c = *b.get(*i).ok_or("unterminated string")?;
        *i += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*i).ok_or("truncated escape")?;
                *i += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let cp = p_hex4(b, i)?;
                        // Surrogate pair: a high surrogate must be
                        // followed by `\u` + low surrogate.
                        let ch = if (0xd800..0xdc00).contains(&cp) {
                            if b.get(*i) == Some(&b'\\') && b.get(*i + 1) == Some(&b'u') {
                                *i += 2;
                                let lo = p_hex4(b, i)?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined).ok_or("bad surrogate pair")?
                            } else {
                                return Err("lone high surrogate".to_owned());
                            }
                        } else {
                            char::from_u32(cp).ok_or("bad \\u codepoint")?
                        };
                        out.push(ch);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte 0x{c:02x} in string")),
            _ => {
                // Re-assemble the UTF-8 sequence starting at c.
                let len = utf8_len(c)?;
                let start = *i - 1;
                *i = start + len;
                let chunk = b.get(start..*i).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err(format!("bad UTF-8 lead byte 0x{first:02x}")),
    }
}

fn p_hex4(b: &[u8], i: &mut usize) -> Result<u32, String> {
    let hex = b.get(*i..*i + 4).ok_or("truncated \\u escape")?;
    *i += 4;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn p_array(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
    *i += 1; // consume [
    let mut items = Vec::new();
    p_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(p_value(b, i)?);
        p_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected , or ] at offset {i}")),
        }
    }
}

fn p_object(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
    *i += 1; // consume {
    let mut fields = Vec::new();
    p_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        p_ws(b, i);
        let k = p_string(b, i)?;
        p_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected : at offset {i}"));
        }
        *i += 1;
        fields.push((k, p_value(b, i)?));
        p_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected , or }} at offset {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_control_and_unicode() {
        // Every control character, the JSON specials, and some
        // multi-byte unicode (including an astral-plane char).
        let mut nasty = String::new();
        for c in 0u8..0x20 {
            nasty.push(c as char);
        }
        nasty.push_str("\"\\/ plain ascii … ünïcode 🚀 \u{7f}");
        let doc = {
            let mut o = JsonObj::new();
            o.str("s", &nasty);
            o.finish()
        };
        let parsed = parse(&doc).expect("escaped doc parses");
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn fmt_f64_nonfinite_is_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-0.0), "-0");
    }

    #[test]
    fn nonfinite_floats_round_trip_as_null() {
        let doc = {
            let mut o = JsonObj::new();
            o.f64("nan", f64::NAN)
                .f64("inf", f64::INFINITY)
                .f64("ninf", f64::NEG_INFINITY)
                .f64("fine", 1.5);
            o.finish()
        };
        let v = parse(&doc).expect("document with null floats parses");
        assert_eq!(v.get("nan"), Some(&JsonValue::Null));
        assert_eq!(v.get("inf"), Some(&JsonValue::Null));
        assert_eq!(v.get("ninf"), Some(&JsonValue::Null));
        assert_eq!(v.get("fine").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn integers_parse_exactly() {
        let doc = {
            let mut o = JsonObj::new();
            o.u64("max", u64::MAX).i64("min", i64::MIN);
            o.finish()
        };
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("max").unwrap().as_int(), Some(u64::MAX as i128));
        assert_eq!(v.get("min").unwrap().as_int(), Some(i64::MIN as i128));
        // Exponent/fraction forms are floats, not ints.
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Num(1.5));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\"\\u12\"",
            "\"\\ud800\"", // lone high surrogate
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn arrays_and_nesting_round_trip() {
        let doc = {
            let mut inner = JsonObj::new();
            inner.arr_u64("xs", &[1, 2, 3]).bool("b", true);
            let mut o = JsonObj::new();
            o.raw("inner", &inner.finish()).raw(
                "list",
                &array(&["1".into(), "\"two\"".into(), "null".into()]),
            );
            o.finish()
        };
        let v = parse(&doc).unwrap();
        let xs = v.get("inner").unwrap().get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(v.get("list").unwrap().as_arr().unwrap()[2], JsonValue::Null);
    }
}
