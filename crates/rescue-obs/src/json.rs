//! Minimal hand-rolled JSON serialization (the sandbox is offline, so no
//! serde). Only what the tracer and report need: objects, arrays,
//! strings, integers, floats, booleans.

use std::fmt::Write as _;

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` is Rust's shortest round-trip formatting; always contains
        // a digit, never an empty string.
        let s = format!("{v}");
        // Guard against "inf"-style output slipping through.
        if s.parse::<f64>().is_ok() {
            s
        } else {
            "null".to_owned()
        }
    } else {
        "null".to_owned()
    }
}

/// Incremental JSON object builder.
///
/// ```
/// use rescue_obs::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("name", "podem").u64("backtracks", 17);
/// assert_eq!(o.finish(), r#"{"name":"podem","backtracks":17}"#);
/// ```
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// Start an object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`null` if not finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-serialized JSON value verbatim.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Add an array of unsigned integers.
    pub fn arr_u64(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialize a list of pre-serialized JSON values as a JSON array.
pub fn array(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(it);
    }
    s.push(']');
    s
}
