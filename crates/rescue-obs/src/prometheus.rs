//! Prometheus text exposition (version 0.0.4) rendering for the
//! `/metrics` endpoint.
//!
//! Pure functions over plain-data snapshots — no I/O, no globals — so
//! the exact bytes served by [`crate::server::TelemetryServer`] are
//! golden-testable. Families render sorted by name: live counters first
//! (as `rescue_live_<name>_total` plus a `_per_sec` rate gauge), then
//! registry counters, gauges, and histograms (log₂ buckets become
//! cumulative `_bucket{le="..."}` series).

use crate::live::LiveSnapshot;
use crate::metrics::{HistogramSnapshot, RegistrySnapshot};
use std::fmt::Write as _;

/// Prefix applied to every exported family name.
const PREFIX: &str = "rescue_";

/// Sanitize a dotted metric name into a Prometheus metric name: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit
/// gets an underscore prefix.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Escape a `# HELP` text or label value: backslash, newline, and (for
/// label values) double quote.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", escape(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    family(out, name, "Log2-bucket histogram.", "histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            HistogramSnapshot::bucket_limit(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render one full exposition document from a live-hub snapshot plus a
/// registry snapshot. Both snapshot types are already sorted by name;
/// the output preserves that ordering, so two scrapes of an idle
/// process are byte-identical.
pub fn render(live: &LiveSnapshot, reg: &RegistrySnapshot) -> String {
    let mut out = String::new();
    family(
        &mut out,
        "rescue_uptime_seconds",
        "Seconds since telemetry started.",
        "gauge",
    );
    let _ = writeln!(
        &mut out,
        "rescue_uptime_seconds {}",
        crate::json::fmt_f64(live.uptime_ns as f64 / 1e9)
    );
    for c in &live.counters {
        let base = format!("{PREFIX}live_{}", sanitize(c.name));
        let help = crate::live::LiveCounter::ALL
            .iter()
            .find(|lc| lc.name() == c.name)
            .map_or("Live progress counter.", |lc| lc.help());
        family(&mut out, &format!("{base}_total"), help, "counter");
        let _ = writeln!(&mut out, "{base}_total {}", c.total);
        family(
            &mut out,
            &format!("{base}_per_sec"),
            "Recent-window rate of the matching live counter.",
            "gauge",
        );
        let _ = writeln!(
            &mut out,
            "{base}_per_sec {}",
            crate::json::fmt_f64(c.rate_per_sec)
        );
    }
    for (name, v) in &reg.counters {
        let base = format!("{PREFIX}{}", sanitize(name));
        family(
            &mut out,
            &format!("{base}_total"),
            "Registry counter.",
            "counter",
        );
        let _ = writeln!(&mut out, "{base}_total {v}");
    }
    for (name, v) in &reg.gauges {
        let base = format!("{PREFIX}{}", sanitize(name));
        family(&mut out, &base, "Registry gauge.", "gauge");
        let _ = writeln!(&mut out, "{base} {v}");
    }
    for (name, h) in &reg.histograms {
        histogram(&mut out, &format!("{PREFIX}{}", sanitize(name)), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("atpg.faults_classified"), "atpg_faults_classified");
        assert_eq!(sanitize("3sat"), "_3sat");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn escape_help_text() {
        assert_eq!(escape("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
    }
}
