//! Export traces in the Chrome trace-event JSON format, loadable in
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! Two inputs are accepted: the tracer's in-memory
//! [`TraceRecord`] buffer (the live path used by the `--trace-perfetto`
//! flag), and a span/event/counter JSONL document previously written by
//! the `--trace-json` sink ([`from_jsonl`], the offline converter).
//! Either way the output is one JSON object:
//!
//! ```json
//! {"displayTimeUnit":"ms","traceEvents":[
//!   {"name":"process_name","ph":"M","pid":1,"args":{"name":"table3"}},
//!   {"name":"atpg.run","cat":"span","ph":"X","ts":12.5,"dur":8121.75,"pid":1,"tid":1},
//!   {"name":"atpg.coverage","ph":"C","ts":900.0,"pid":1,"tid":1,"args":{"value":0.42}}
//! ]}
//! ```
//!
//! Spans become complete (`"X"`) events, point events become instants
//! (`"i"`), and counter samples become counter (`"C"`) events, which
//! Perfetto renders as counter tracks — the IPC, queue-occupancy, and
//! coverage-so-far timelines. Timestamps are microseconds (the format's
//! unit) relative to the tracer epoch.

use crate::json::{self, JsonObj, JsonValue};
use crate::trace::TraceRecord;
use std::collections::BTreeSet;

/// Render records as a complete Chrome trace-event JSON document titled
/// `title` (shown as the process name in the Perfetto UI).
pub fn render(title: &str, records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 4);
    {
        let mut args = JsonObj::new();
        args.str("name", title);
        let mut o = JsonObj::new();
        o.str("name", "process_name")
            .str("ph", "M")
            .u64("pid", 1)
            .raw("args", &args.finish());
        events.push(o.finish());
    }
    let tids: BTreeSet<u64> = records
        .iter()
        .map(|r| match r {
            TraceRecord::Span { tid, .. }
            | TraceRecord::Event { tid, .. }
            | TraceRecord::Counter { tid, .. } => *tid,
        })
        .collect();
    for tid in tids {
        let mut args = JsonObj::new();
        args.str("name", &format!("thread {tid}"));
        let mut o = JsonObj::new();
        o.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", 1)
            .u64("tid", tid)
            .raw("args", &args.finish());
        events.push(o.finish());
    }
    for r in records {
        events.push(render_record(r));
    }
    let mut doc = JsonObj::new();
    doc.str("displayTimeUnit", "ms")
        .raw("traceEvents", &json::array(&events));
    doc.finish()
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn render_record(r: &TraceRecord) -> String {
    match r {
        TraceRecord::Span {
            name,
            ts_ns,
            dur_ns,
            depth,
            tid,
        } => {
            let mut args = JsonObj::new();
            args.u64("depth", *depth);
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("cat", "span")
                .str("ph", "X")
                .f64("ts", us(*ts_ns))
                .f64("dur", us(*dur_ns))
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &args.finish());
            o.finish()
        }
        TraceRecord::Event {
            name,
            ts_ns,
            tid,
            fields,
        } => {
            let mut args = JsonObj::new();
            for (k, v) in fields {
                args.str(k, v);
            }
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("cat", "event")
                .str("ph", "i")
                .str("s", "t")
                .f64("ts", us(*ts_ns))
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &args.finish());
            o.finish()
        }
        TraceRecord::Counter {
            name,
            ts_ns,
            value,
            tid,
        } => {
            let mut args = JsonObj::new();
            args.f64("value", *value);
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("ph", "C")
                .f64("ts", us(*ts_ns))
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &args.finish());
            o.finish()
        }
    }
}

/// Convert a `--trace-json` JSONL document into trace-event JSON.
///
/// Blank lines are skipped; a malformed line or an unknown `type` is an
/// error naming the line number. Lines written before the `tid` field
/// existed default to thread 1.
pub fn from_jsonl(title: &str, jsonl: &str) -> Result<String, String> {
    let mut records = Vec::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        records.push(record_of_line(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(render(title, &records))
}

fn record_of_line(v: &JsonValue) -> Result<TraceRecord, String> {
    let get_str = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {k:?}"))
    };
    let get_u64 = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_int)
            .map(|i| i as u64)
            .ok_or_else(|| format!("missing integer field {k:?}"))
    };
    let tid = v.get("tid").and_then(JsonValue::as_int).unwrap_or(1) as u64;
    match get_str("type")?.as_str() {
        "span" => Ok(TraceRecord::Span {
            name: get_str("name")?,
            ts_ns: get_u64("ts_ns")?,
            dur_ns: get_u64("dur_ns")?,
            depth: get_u64("depth")?,
            tid,
        }),
        "event" => {
            let fields = match v {
                JsonValue::Obj(kvs) => kvs
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(k.as_str(), "type" | "name" | "ts_ns" | "depth" | "tid")
                    })
                    .filter_map(|(k, val)| val.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect(),
                _ => Vec::new(),
            };
            Ok(TraceRecord::Event {
                name: get_str("name")?,
                ts_ns: get_u64("ts_ns")?,
                tid,
                fields,
            })
        }
        "counter" => Ok(TraceRecord::Counter {
            name: get_str("name")?,
            ts_ns: get_u64("ts_ns")?,
            value: v
                .get("value")
                .and_then(JsonValue::as_f64)
                .ok_or("missing numeric field \"value\"")?,
            tid,
        }),
        other => Err(format!("unknown record type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Span {
                name: "atpg.run".into(),
                ts_ns: 1_500,
                dur_ns: 2_000_000,
                depth: 0,
                tid: 1,
            },
            TraceRecord::Event {
                name: "flush".into(),
                ts_ns: 900_000,
                tid: 1,
                fields: vec![("block".into(), "3".into())],
            },
            TraceRecord::Counter {
                name: "atpg.coverage".into(),
                ts_ns: 950_000,
                value: 0.42,
                tid: 2,
            },
        ]
    }

    /// The schema contract behind the acceptance criterion: the document
    /// parses, and every trace event carries the fields its phase
    /// requires (Perfetto rejects documents violating these).
    #[test]
    fn rendered_document_satisfies_trace_event_schema() {
        let doc = render("unit \"test\"", &sample_records());
        let v = json::parse(&doc).expect("trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(events.len() >= sample_records().len());
        let mut seen_x = 0;
        let mut seen_i = 0;
        let mut seen_c = 0;
        for e in events {
            let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(e.get("name").and_then(JsonValue::as_str).is_some());
            assert!(e.get("pid").and_then(JsonValue::as_int).is_some());
            match ph {
                "M" => continue, // metadata: no timestamp required
                _ => {
                    let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
                    assert!(ts >= 0.0);
                }
            }
            assert!(e.get("tid").and_then(JsonValue::as_int).is_some());
            match ph {
                "X" => {
                    assert!(e.get("dur").and_then(JsonValue::as_f64).unwrap() >= 0.0);
                    seen_x += 1;
                }
                "i" => {
                    assert_eq!(e.get("s").and_then(JsonValue::as_str), Some("t"));
                    seen_i += 1;
                }
                "C" => {
                    let args = e.get("args").expect("counter args");
                    assert!(args.get("value").and_then(JsonValue::as_f64).is_some());
                    seen_c += 1;
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert_eq!((seen_x, seen_i, seen_c), (1, 1, 1));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = render("t", &sample_records());
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2000.0));
    }

    #[test]
    fn jsonl_conversion_round_trips() {
        let jsonl = concat!(
            "{\"type\":\"span\",\"name\":\"a\",\"ts_ns\":10,\"dur_ns\":20,\"depth\":0,\"tid\":1}\n",
            "\n",
            "{\"type\":\"event\",\"name\":\"e\",\"ts_ns\":15,\"depth\":1,\"tid\":1,\"k\":\"v\"}\n",
            "{\"type\":\"counter\",\"name\":\"c\",\"ts_ns\":18,\"value\":2.5,\"tid\":1}\n",
        );
        let doc = from_jsonl("conv", jsonl).expect("converts");
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .filter(|p| *p != "M")
            .collect();
        assert_eq!(phases, vec!["X", "i", "C"]);
        // The event's extra field survives into args.
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .unwrap();
        assert_eq!(
            inst.get("args")
                .unwrap()
                .get("k")
                .and_then(JsonValue::as_str),
            Some("v")
        );
    }

    #[test]
    fn jsonl_conversion_reports_bad_lines() {
        let err = from_jsonl("t", "{\"type\":\"mystery\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = from_jsonl("t", "not json").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    /// A tracer wired for recording produces records that render into a
    /// schema-valid document end to end.
    #[test]
    fn live_tracer_records_render() {
        let t = crate::trace::Tracer::new();
        t.set_record(true);
        {
            let _s = t.span("outer");
            t.counter("cov", 0.5);
            t.event("mark", &[("x", "1")]);
        }
        let records = t.take_records();
        assert_eq!(records.len(), 3);
        let doc = render("live", &records);
        assert!(json::parse(&doc).is_ok());
        // Buffer drained.
        assert!(t.take_records().is_empty());
    }
}
