//! Export traces in the Chrome trace-event JSON format, loadable in
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! Two inputs are accepted: the tracer's in-memory
//! [`TraceRecord`] buffer (the live path used by the `--trace-perfetto`
//! flag), and a span/event/counter JSONL document previously written by
//! the `--trace-json` sink ([`from_jsonl`], the offline converter).
//! Either way the output is one JSON object:
//!
//! ```json
//! {"displayTimeUnit":"ms","traceEvents":[
//!   {"name":"process_name","ph":"M","pid":1,"args":{"name":"table3"}},
//!   {"name":"atpg.run","cat":"span","ph":"X","ts":12.5,"dur":8121.75,"pid":1,"tid":1},
//!   {"name":"atpg.coverage","ph":"C","ts":900.0,"pid":1,"tid":1,"args":{"value":0.42}}
//! ]}
//! ```
//!
//! Spans become complete (`"X"`) events, point events become instants
//! (`"i"`), and counter samples become counter (`"C"`) events, which
//! Perfetto renders as counter tracks — the IPC, queue-occupancy, and
//! coverage-so-far timelines. Timestamps are microseconds (the format's
//! unit) relative to the tracer epoch.

use crate::json::{self, JsonObj, JsonValue};
use crate::trace::TraceRecord;
use std::collections::BTreeSet;

/// Render records as a complete Chrome trace-event JSON document titled
/// `title` (shown as the process name in the Perfetto UI).
pub fn render(title: &str, records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 4);
    {
        let mut args = JsonObj::new();
        args.str("name", title);
        let mut o = JsonObj::new();
        o.str("name", "process_name")
            .str("ph", "M")
            .u64("pid", 1)
            .raw("args", &args.finish());
        events.push(o.finish());
    }
    let tids: BTreeSet<u64> = records
        .iter()
        .map(|r| match r {
            TraceRecord::Span { tid, .. }
            | TraceRecord::Event { tid, .. }
            | TraceRecord::Counter { tid, .. } => *tid,
        })
        .collect();
    for tid in tids {
        let mut args = JsonObj::new();
        let label = if tid == crate::profile::PROFILE_TID {
            "profile (aggregate)".to_owned()
        } else {
            format!("thread {tid}")
        };
        args.str("name", &label);
        let mut o = JsonObj::new();
        o.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", 1)
            .u64("tid", tid)
            .raw("args", &args.finish());
        events.push(o.finish());
    }
    for r in records {
        events.push(render_record(r));
    }
    let mut doc = JsonObj::new();
    doc.str("displayTimeUnit", "ms")
        .raw("traceEvents", &json::array(&events));
    doc.finish()
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn render_record(r: &TraceRecord) -> String {
    match r {
        TraceRecord::Span {
            name,
            ts_ns,
            dur_ns,
            depth,
            tid,
        } => {
            let mut args = JsonObj::new();
            args.u64("depth", *depth);
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("cat", "span")
                .str("ph", "X")
                .f64("ts", us(*ts_ns))
                .f64("dur", us(*dur_ns))
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &args.finish());
            o.finish()
        }
        TraceRecord::Event {
            name,
            ts_ns,
            tid,
            fields,
        } => {
            let mut args = JsonObj::new();
            for (k, v) in fields {
                args.str(k, v);
            }
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("cat", "event")
                .str("ph", "i")
                .str("s", "t")
                .f64("ts", us(*ts_ns))
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &args.finish());
            o.finish()
        }
        TraceRecord::Counter {
            name,
            ts_ns,
            value,
            tid,
        } => {
            let mut args = JsonObj::new();
            args.f64("value", *value);
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("ph", "C")
                .f64("ts", us(*ts_ns))
                .u64("pid", 1)
                .u64("tid", *tid)
                .raw("args", &args.finish());
            o.finish()
        }
    }
}

/// Convert a `--trace-json` JSONL document into trace-event JSON.
///
/// Blank lines are skipped; a malformed line or an unknown `type` is an
/// error naming the line number — with one exception: a JSON *parse*
/// failure on the final non-blank line is treated as a torn tail (the
/// process was killed mid-write, e.g. inside a still-open span) and the
/// line is dropped, so a kill-mid-span trace still converts. A line
/// that parses but is semantically wrong (unknown `type`, missing
/// field) errors wherever it appears. Lines written before the `tid`
/// field existed default to thread 1.
pub fn from_jsonl(title: &str, jsonl: &str) -> Result<String, String> {
    let lines: Vec<(usize, &str)> = jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut records = Vec::new();
    for (pos, &(lineno, line)) in lines.iter().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(_) if pos + 1 == lines.len() => break, // torn final write
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        };
        records.push(record_of_line(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(render(title, &records))
}

fn record_of_line(v: &JsonValue) -> Result<TraceRecord, String> {
    let get_str = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {k:?}"))
    };
    let get_u64 = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_int)
            .map(|i| i as u64)
            .ok_or_else(|| format!("missing integer field {k:?}"))
    };
    let tid = v.get("tid").and_then(JsonValue::as_int).unwrap_or(1) as u64;
    match get_str("type")?.as_str() {
        "span" => Ok(TraceRecord::Span {
            name: get_str("name")?,
            ts_ns: get_u64("ts_ns")?,
            dur_ns: get_u64("dur_ns")?,
            depth: get_u64("depth")?,
            tid,
        }),
        "event" => {
            let fields = match v {
                JsonValue::Obj(kvs) => kvs
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(k.as_str(), "type" | "name" | "ts_ns" | "depth" | "tid")
                    })
                    .filter_map(|(k, val)| val.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect(),
                _ => Vec::new(),
            };
            Ok(TraceRecord::Event {
                name: get_str("name")?,
                ts_ns: get_u64("ts_ns")?,
                tid,
                fields,
            })
        }
        "counter" => Ok(TraceRecord::Counter {
            name: get_str("name")?,
            ts_ns: get_u64("ts_ns")?,
            value: v
                .get("value")
                .and_then(JsonValue::as_f64)
                .ok_or("missing numeric field \"value\"")?,
            tid,
        }),
        other => Err(format!("unknown record type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Span {
                name: "atpg.run".into(),
                ts_ns: 1_500,
                dur_ns: 2_000_000,
                depth: 0,
                tid: 1,
            },
            TraceRecord::Event {
                name: "flush".into(),
                ts_ns: 900_000,
                tid: 1,
                fields: vec![("block".into(), "3".into())],
            },
            TraceRecord::Counter {
                name: "atpg.coverage".into(),
                ts_ns: 950_000,
                value: 0.42,
                tid: 2,
            },
        ]
    }

    /// The schema contract behind the acceptance criterion: the document
    /// parses, and every trace event carries the fields its phase
    /// requires (Perfetto rejects documents violating these).
    #[test]
    fn rendered_document_satisfies_trace_event_schema() {
        let doc = render("unit \"test\"", &sample_records());
        let v = json::parse(&doc).expect("trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(events.len() >= sample_records().len());
        let mut seen_x = 0;
        let mut seen_i = 0;
        let mut seen_c = 0;
        for e in events {
            let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(e.get("name").and_then(JsonValue::as_str).is_some());
            assert!(e.get("pid").and_then(JsonValue::as_int).is_some());
            match ph {
                "M" => continue, // metadata: no timestamp required
                _ => {
                    let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
                    assert!(ts >= 0.0);
                }
            }
            assert!(e.get("tid").and_then(JsonValue::as_int).is_some());
            match ph {
                "X" => {
                    assert!(e.get("dur").and_then(JsonValue::as_f64).unwrap() >= 0.0);
                    seen_x += 1;
                }
                "i" => {
                    assert_eq!(e.get("s").and_then(JsonValue::as_str), Some("t"));
                    seen_i += 1;
                }
                "C" => {
                    let args = e.get("args").expect("counter args");
                    assert!(args.get("value").and_then(JsonValue::as_f64).is_some());
                    seen_c += 1;
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert_eq!((seen_x, seen_i, seen_c), (1, 1, 1));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = render("t", &sample_records());
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2000.0));
    }

    #[test]
    fn jsonl_conversion_round_trips() {
        let jsonl = concat!(
            "{\"type\":\"span\",\"name\":\"a\",\"ts_ns\":10,\"dur_ns\":20,\"depth\":0,\"tid\":1}\n",
            "\n",
            "{\"type\":\"event\",\"name\":\"e\",\"ts_ns\":15,\"depth\":1,\"tid\":1,\"k\":\"v\"}\n",
            "{\"type\":\"counter\",\"name\":\"c\",\"ts_ns\":18,\"value\":2.5,\"tid\":1}\n",
        );
        let doc = from_jsonl("conv", jsonl).expect("converts");
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .filter(|p| *p != "M")
            .collect();
        assert_eq!(phases, vec!["X", "i", "C"]);
        // The event's extra field survives into args.
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .unwrap();
        assert_eq!(
            inst.get("args")
                .unwrap()
                .get("k")
                .and_then(JsonValue::as_str),
            Some("v")
        );
    }

    #[test]
    fn jsonl_conversion_reports_bad_lines() {
        // Semantic errors (valid JSON, wrong shape) error anywhere —
        // including on the last line.
        let err = from_jsonl("t", "{\"type\":\"mystery\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // A parse failure that is NOT the final line is a real error.
        let jsonl = concat!(
            "not json\n",
            "{\"type\":\"counter\",\"name\":\"c\",\"ts_ns\":1,\"value\":1,\"tid\":1}\n",
        );
        let err = from_jsonl("t", jsonl).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn empty_trace_converts_to_valid_document() {
        for input in ["", "\n\n  \n"] {
            let doc = from_jsonl("empty", input).expect("empty trace converts");
            let v = json::parse(&doc).expect("valid JSON");
            let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
            // Only the process_name metadata event remains.
            assert_eq!(events.len(), 1, "{doc}");
            assert_eq!(
                events[0].get("name").and_then(JsonValue::as_str),
                Some("process_name")
            );
        }
        let doc = render("empty", &[]);
        assert!(json::parse(&doc).is_ok());
    }

    /// A process killed mid-span leaves a JSONL file whose enclosing
    /// span was never written and whose final line may be torn. The
    /// converter must keep every intact record and drop only the torn
    /// tail.
    #[test]
    fn kill_mid_span_trace_converts_dropping_torn_tail() {
        let jsonl = concat!(
            "{\"type\":\"span\",\"name\":\"inner\",\"ts_ns\":10,\"dur_ns\":20,\"depth\":1,\"tid\":1}\n",
            "{\"type\":\"counter\",\"name\":\"cov\",\"ts_ns\":25,\"value\":0.5,\"tid\":1}\n",
            "{\"type\":\"event\",\"name\":\"progre", // torn mid-write at kill
        );
        let doc = from_jsonl("killed", jsonl).expect("torn tail tolerated");
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .filter(|p| *p != "M")
            .collect();
        assert_eq!(phases, vec!["X", "C"], "{doc}");
    }

    /// Two counter tracks with the same name on different threads must
    /// stay distinct (same name + same tid would merge in the UI; the
    /// converter keys tracks by (name, tid) as the format requires).
    #[test]
    fn duplicate_counter_track_names_keep_distinct_tids() {
        let records = vec![
            TraceRecord::Counter {
                name: "queue_len".into(),
                ts_ns: 100,
                value: 3.0,
                tid: 1,
            },
            TraceRecord::Counter {
                name: "queue_len".into(),
                ts_ns: 120,
                value: 7.0,
                tid: 2,
            },
        ];
        let doc = render("dup", &records);
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let counters: Vec<(&str, i128, f64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .map(|e| {
                (
                    e.get("name").and_then(JsonValue::as_str).unwrap(),
                    e.get("tid").and_then(JsonValue::as_int).unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("value")
                        .and_then(JsonValue::as_f64)
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(
            counters,
            vec![("queue_len", 1, 3.0), ("queue_len", 2, 7.0)],
            "{doc}"
        );
        // Both tids got thread_name metadata.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .and_then(JsonValue::as_str)
            })
            .collect();
        assert_eq!(names, vec!["thread 1", "thread 2"]);
    }

    #[test]
    fn profile_tid_gets_aggregate_thread_name() {
        let records = vec![TraceRecord::Span {
            name: "profile/atpg".into(),
            ts_ns: 0,
            dur_ns: 10,
            depth: 0,
            tid: crate::profile::PROFILE_TID,
        }];
        let doc = render("p", &records);
        assert!(doc.contains("profile (aggregate)"), "{doc}");
    }

    /// A tracer wired for recording produces records that render into a
    /// schema-valid document end to end.
    #[test]
    fn live_tracer_records_render() {
        let t = crate::trace::Tracer::new();
        t.set_record(true);
        {
            let _s = t.span("outer");
            t.counter("cov", 0.5);
            t.event("mark", &[("x", "1")]);
        }
        let records = t.take_records();
        assert_eq!(records.len(), 3);
        let doc = render("live", &records);
        assert!(json::parse(&doc).is_ok());
        // Buffer drained.
        assert!(t.take_records().is_empty());
    }
}
