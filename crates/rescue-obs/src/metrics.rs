//! Typed metric primitives: counters, gauges, and log₂-bucket
//! histograms.
//!
//! All primitives are single relaxed atomic operations on the hot path,
//! so they can sit inside the PODEM backtrack loop or the per-cycle
//! pipeline step without measurable cost, and they are `Sync` so the
//! Figure 9 thread fan-out can share them. Snapshots are plain data
//! (`Clone + PartialEq`) for result structs and golden tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, bucket 64 holds the top of the u64 range.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` samples with fixed log₂ buckets.
///
/// Recording is two relaxed `fetch_add`s plus two `fetch_min`/`max`
/// updates — no allocation, no locking.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for zero, else `64 - leading_zeros`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data histogram state, suitable for result structs, equality
/// checks, and serialization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// One count per log₂ bucket (see [`bucket_of`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Record a sample into the snapshot itself (for single-threaded
    /// accumulation inside engines that already hold `&mut self`).
    pub fn record(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        // Wrap like the atomic path does rather than panic in debug.
        self.sum = self.sum.wrapping_add(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Upper bound (exclusive) of bucket `i`'s value range.
    pub fn bucket_limit(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Compact one-line rendering: `count/mean/min/max` plus the
    /// non-empty buckets.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "empty".to_owned();
        }
        let mut s = format!(
            "n={} mean={:.2} min={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.max
        );
        let populated: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| format!("<{}:{}", Self::bucket_limit(i), c))
            .collect();
        if !populated.is_empty() {
            s.push_str(" [");
            s.push_str(&populated.join(" "));
            s.push(']');
        }
        s
    }
}

/// A name-keyed registry of shared metrics.
///
/// Engines with typed metric structs don't need this; it exists for
/// ad-hoc instrumentation and as the bridge into [`crate::report`].
/// Lookup allocates, so fetch handles once outside hot loops.
#[derive(Debug, Default)]
pub struct Registry {
    counters: std::sync::Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: std::sync::Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: std::sync::Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("registry poisoned")
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("registry poisoned")
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry poisoned")
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Snapshot every metric, sorted by name within each kind.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data snapshot of a [`Registry`].
///
/// Every list is sorted by name (the registry stores metrics in
/// `BTreeMap`s), so consumers — `/metrics`, `/snapshot.json`,
/// `BENCH_metrics.json` — are deterministic without re-sorting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// (name, value) per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// (name, value) per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// (name, snapshot) per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The process-global registry, served live at `/metrics` and
/// `/snapshot.json` by [`crate::server::TelemetryServer`]. Engines with
/// typed metric structs don't need it; it exists so ad-hoc
/// instrumentation anywhere in the workspace shows up on the telemetry
/// endpoint without plumbing.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_math() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_math() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 201.2).abs() < 1e-9);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.render(), "empty");
    }

    #[test]
    fn snapshot_record_matches_atomic_histogram() {
        // The &mut self accumulation path must agree with the atomic
        // path sample for sample.
        let h = Histogram::new();
        let mut s = HistogramSnapshot::default();
        for v in [7u64, 0, 64, 65, 12_345, u64::MAX] {
            h.record(v);
            s.record(v);
        }
        assert_eq!(h.snapshot(), s);
    }

    #[test]
    fn bucket_limits_bracket_samples() {
        for v in [0u64, 1, 5, 100, 1 << 40] {
            let b = bucket_of(v);
            assert!(v < HistogramSnapshot::bucket_limit(b));
            if b > 0 {
                assert!(v >= HistogramSnapshot::bucket_limit(b - 1));
            }
        }
    }

    #[test]
    fn registry_snapshot_is_sorted_regardless_of_insertion_order() {
        let r = Registry::new();
        for name in ["zeta", "alpha", "mid.dle", "Alpha2"] {
            r.counter(name).inc();
            r.gauge(name).set(1);
            r.histogram(name).record(1);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["Alpha2", "alpha", "mid.dle", "zeta"]);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let gauge_names: Vec<&str> = snap.gauges.iter().map(|(k, _)| k.as_str()).collect();
        let hist_names: Vec<&str> = snap.histograms.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(gauge_names, names);
        assert_eq!(hist_names, names);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("metrics.test.global");
        c.add(3);
        assert_eq!(global().counter("metrics.test.global").get(), c.get());
    }

    #[test]
    fn registry_shares_handles() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        r.gauge("g").set(-3);
        r.histogram("h").record(9);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_owned(), 2)]);
        assert_eq!(snap.gauges, vec![("g".to_owned(), -3)]);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
