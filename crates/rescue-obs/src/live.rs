//! Live telemetry: lock-free per-worker progress rings and a snapshot
//! aggregator — the pull-able progress surface behind the
//! `--serve-metrics` HTTP endpoint ([`crate::server`]) and the
//! `--progress-every` JSONL progress frames.
//!
//! Long engine loops (PODEM over the collapsed fault list, sharded
//! fault simulation, fuzz campaigns) publish progress as
//! `(mono_ns, counter, delta)` samples into fixed-capacity
//! [`ProgressRing`]s — one ring per fault-simulation worker slot plus
//! one for the main thread — using only relaxed/acq-rel atomics, so the
//! hot loops never take a lock and never block on a slow scraper. A
//! reader-side aggregator ([`LiveHub::snapshot`]) folds the rings into
//! monotonic per-counter totals and recent-window rates.
//!
//! Two precision classes, by design:
//!
//! * **Totals are exact.** Every [`ProgressRing::record`] adds its delta
//!   to a per-counter atomic total before touching the sample slots, so
//!   aggregated totals are correct for any number of writers, even when
//!   the ring wraps and old samples are overwritten.
//! * **Samples are advisory.** The ring keeps only the newest
//!   `capacity` samples (overflow silently overwrites the oldest), and
//!   a reader racing a writer may observe a torn sample, which it
//!   simply misattributes within the rate window. Rates are therefore
//!   estimates; the monotone counters served at `/metrics` come from
//!   the exact totals.
//!
//! The hub starts disabled; until a bench binary enables it (the
//! `--serve-metrics` / `--progress-every` flags), every record call is
//! one relaxed atomic load and no ring memory is allocated.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The fixed set of live progress counters engines publish. Adding a
/// variant automatically adds it to `/metrics`, `/snapshot.json`, and
/// the `live.*` report section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveCounter {
    /// ATPG: collapsed faults classified (any class, including faults
    /// dropped by fault simulation).
    AtpgFaultsClassified,
    /// ATPG: faults classified `Detected` specifically.
    AtpgFaultsDetected,
    /// ATPG: capture vectors committed (post-compaction, post-fill).
    AtpgVectors,
    /// Fault simulation: gate re-evaluations (the unit of fsim work),
    /// recorded per worker shard.
    FsimGateEvals,
    /// Fault simulation: difference-propagation runs, per worker shard.
    FsimFaultsSimulated,
    /// Fault simulation: events pushed onto the propagation queue, per
    /// worker shard (queue pressure).
    FsimEventsQueued,
    /// Fault simulation: pattern blocks loaded (good-machine passes).
    FsimBlocksLoaded,
    /// Pipeline simulation: cycles stepped.
    PipesimCycles,
    /// Pipeline simulation: instructions committed.
    PipesimCommitted,
    /// Fuzzing: cases completed across all enabled oracles.
    FuzzCases,
    /// Fuzzing: confirmed cross-engine divergences.
    FuzzDivergences,
    /// Lint: diagnostics found across linted designs.
    LintFindings,
}

impl LiveCounter {
    /// Every counter, in declaration order (the ring's index space).
    pub const ALL: [LiveCounter; 12] = [
        LiveCounter::AtpgFaultsClassified,
        LiveCounter::AtpgFaultsDetected,
        LiveCounter::AtpgVectors,
        LiveCounter::FsimGateEvals,
        LiveCounter::FsimFaultsSimulated,
        LiveCounter::FsimEventsQueued,
        LiveCounter::FsimBlocksLoaded,
        LiveCounter::PipesimCycles,
        LiveCounter::PipesimCommitted,
        LiveCounter::FuzzCases,
        LiveCounter::FuzzDivergences,
        LiveCounter::LintFindings,
    ];

    /// Stable dotted name, used in `/snapshot.json`, the `live.*`
    /// report section, and (sanitized) the Prometheus family name.
    pub fn name(self) -> &'static str {
        match self {
            LiveCounter::AtpgFaultsClassified => "atpg.faults_classified",
            LiveCounter::AtpgFaultsDetected => "atpg.faults_detected",
            LiveCounter::AtpgVectors => "atpg.vectors",
            LiveCounter::FsimGateEvals => "fsim.gate_evals",
            LiveCounter::FsimFaultsSimulated => "fsim.faults_simulated",
            LiveCounter::FsimEventsQueued => "fsim.events_queued",
            LiveCounter::FsimBlocksLoaded => "fsim.blocks_loaded",
            LiveCounter::PipesimCycles => "pipesim.cycles",
            LiveCounter::PipesimCommitted => "pipesim.committed",
            LiveCounter::FuzzCases => "fuzz.cases",
            LiveCounter::FuzzDivergences => "fuzz.divergences",
            LiveCounter::LintFindings => "lint.findings",
        }
    }

    /// One-line help text for the Prometheus `# HELP` line.
    pub fn help(self) -> &'static str {
        match self {
            LiveCounter::AtpgFaultsClassified => "Collapsed faults classified by ATPG.",
            LiveCounter::AtpgFaultsDetected => "Faults classified Detected by ATPG.",
            LiveCounter::AtpgVectors => "Capture vectors committed by ATPG.",
            LiveCounter::FsimGateEvals => "Gate re-evaluations in fault simulation.",
            LiveCounter::FsimFaultsSimulated => "Difference-propagation runs in fault simulation.",
            LiveCounter::FsimEventsQueued => "Events pushed onto the fault-sim propagation queue.",
            LiveCounter::FsimBlocksLoaded => "Pattern blocks loaded (good-machine passes).",
            LiveCounter::PipesimCycles => "Pipeline-simulation cycles stepped.",
            LiveCounter::PipesimCommitted => "Pipeline-simulation instructions committed.",
            LiveCounter::FuzzCases => "Fuzz cases completed.",
            LiveCounter::FuzzDivergences => "Confirmed cross-engine fuzz divergences.",
            LiveCounter::LintFindings => "Lint diagnostics found.",
        }
    }

    fn from_index(i: usize) -> Option<LiveCounter> {
        LiveCounter::ALL.get(i).copied()
    }
}

/// Number of live counters (the per-ring totals array length).
pub const N_LIVE_COUNTERS: usize = LiveCounter::ALL.len();

/// Samples kept per ring; older samples are overwritten (totals stay
/// exact — see the module docs).
pub const RING_CAPACITY: usize = 512;

/// Ring slots in the hub: slot 0 is the main thread, slots 1..N are
/// fault-simulation workers (worker `i` uses slot `i + 1`, wrapping).
pub const MAX_RINGS: usize = 33;

/// Recent-sample window for rate estimation, in nanoseconds. Exposed
/// so `/snapshot.json` can tell scrapers which window the
/// `rate_per_sec` fields were estimated over.
pub const RATE_WINDOW_NS: u64 = 2_000_000_000;

/// Delta payload bits in a packed sample (top 8 bits carry the counter
/// index); larger deltas saturate in the *sample* only, never in the
/// totals.
const DELTA_MASK: u64 = (1 << 56) - 1;

/// One sample slot: timestamp plus `(counter << 56) | delta` packed.
#[derive(Debug)]
struct Slot {
    ts_ns: AtomicU64,
    packed: AtomicU64,
}

/// One decoded progress sample, as read back by the aggregator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Monotonic nanoseconds since the hub epoch.
    pub ts_ns: u64,
    /// Which counter the delta applies to.
    pub counter: LiveCounter,
    /// Delta recorded (saturated at 2^56-1 in the sample).
    pub delta: u64,
}

/// A fixed-capacity progress ring: exact per-counter totals plus the
/// newest `capacity` `(mono_ns, counter, delta)` samples.
///
/// Designed for one writer (a worker thread) and any number of readers,
/// but safe — totals exact, samples merely approximate — under
/// concurrent writers too, since slot claims go through a fetch-add.
#[derive(Debug)]
pub struct ProgressRing {
    totals: [AtomicU64; N_LIVE_COUNTERS],
    written: AtomicU64,
    slots: Box<[Slot]>,
}

impl ProgressRing {
    /// An empty ring holding up to `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ProgressRing {
            totals: [(); N_LIVE_COUNTERS].map(|_| AtomicU64::new(0)),
            written: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    ts_ns: AtomicU64::new(0),
                    packed: AtomicU64::new(u64::MAX), // invalid counter index: never decodes
                })
                .collect(),
        }
    }

    /// Sample capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Samples ever recorded (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        self.written.load(Ordering::Acquire)
    }

    /// Record one progress delta at monotonic time `ts_ns`. Lock-free:
    /// two relaxed adds plus two relaxed stores.
    #[inline]
    pub fn record(&self, counter: LiveCounter, delta: u64, ts_ns: u64) {
        let idx = counter as usize;
        self.totals[idx].fetch_add(delta, Ordering::Relaxed);
        // Claim a slot; on overflow this overwrites the oldest sample,
        // keeping the newest `capacity` samples.
        let seq = self.written.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.packed.store(
            ((idx as u64) << 56) | delta.min(DELTA_MASK),
            Ordering::Relaxed,
        );
        slot.ts_ns.store(ts_ns, Ordering::Release);
    }

    /// Exact running total for one counter.
    pub fn total(&self, counter: LiveCounter) -> u64 {
        self.totals[counter as usize].load(Ordering::Relaxed)
    }

    /// Decode the newest up-to-`capacity` samples (unordered; samples
    /// racing a concurrent writer may be skipped or misread — see the
    /// module docs).
    pub fn recent(&self) -> Vec<Sample> {
        let written = self.written.load(Ordering::Acquire);
        let n = (written.min(self.slots.len() as u64)) as usize;
        let mut out = Vec::with_capacity(n);
        for slot in self.slots.iter().take(n) {
            let ts_ns = slot.ts_ns.load(Ordering::Acquire);
            let packed = slot.packed.load(Ordering::Relaxed);
            let Some(counter) = LiveCounter::from_index((packed >> 56) as usize) else {
                continue; // unwritten or torn slot
            };
            out.push(Sample {
                ts_ns,
                counter,
                delta: packed & DELTA_MASK,
            });
        }
        out
    }
}

/// Aggregated state of one live counter at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveCounterSnap {
    /// Dotted counter name ([`LiveCounter::name`]).
    pub name: &'static str,
    /// Exact total across all rings.
    pub total: u64,
    /// Estimated rate over the recent sample window, per second.
    pub rate_per_sec: f64,
    /// Monotonic timestamp of the newest sample seen (0 when none).
    pub last_ts_ns: u64,
}

/// A point-in-time aggregate of every ring, sorted by counter name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveSnapshot {
    /// Nanoseconds since the hub epoch.
    pub uptime_ns: u64,
    /// One entry per [`LiveCounter`], sorted by name.
    pub counters: Vec<LiveCounterSnap>,
}

impl LiveSnapshot {
    /// Total for a counter by name (0 when absent).
    pub fn total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total)
    }
}

/// The process-wide ring pool: [`MAX_RINGS`] progress rings, an
/// enable gate, and the monotonic epoch snapshots are measured against.
#[derive(Debug)]
pub struct LiveHub {
    enabled: AtomicBool,
    epoch: Instant,
    rings: OnceLock<Vec<ProgressRing>>,
    progress_every: AtomicU64,
}

impl LiveHub {
    fn new() -> Self {
        LiveHub {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            rings: OnceLock::new(),
            progress_every: AtomicU64::new(0),
        }
    }

    /// Turn live telemetry on (allocating the ring pool on first use)
    /// or off. While off, [`LiveHub::ring`] returns `None` and
    /// [`LiveHub::record`] is one atomic load.
    pub fn set_enabled(&self, on: bool) {
        if on {
            self.rings.get_or_init(|| {
                (0..MAX_RINGS)
                    .map(|_| ProgressRing::new(RING_CAPACITY))
                    .collect()
            });
        }
        self.enabled.store(on, Ordering::Release);
    }

    /// Whether live telemetry is being collected.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Monotonic nanoseconds since the hub was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The ring for `slot` (wrapping past [`MAX_RINGS`]), or `None`
    /// while the hub is disabled. Slot 0 is the main thread; fault-sim
    /// worker `i` uses slot `i + 1`.
    pub fn ring(&self, slot: usize) -> Option<&ProgressRing> {
        if !self.enabled() {
            return None;
        }
        self.rings.get().map(|rings| &rings[slot % rings.len()])
    }

    /// Record a delta on the main-thread ring (slot 0); no-op while
    /// disabled.
    #[inline]
    pub fn record(&self, counter: LiveCounter, delta: u64) {
        if let Some(ring) = self.ring(0) {
            ring.record(counter, delta, self.now_ns());
        }
    }

    /// Exact total for one counter summed across all rings (0 while
    /// disabled).
    pub fn total(&self, counter: LiveCounter) -> u64 {
        self.rings
            .get()
            .map_or(0, |rings| rings.iter().map(|r| r.total(counter)).sum())
    }

    /// Set the `--progress-every` period (0 disables progress frames).
    pub fn set_progress_every(&self, every: u64) {
        self.progress_every.store(every, Ordering::Relaxed);
    }

    /// Current progress-frame period (0 = disabled).
    pub fn progress_every(&self) -> u64 {
        self.progress_every.load(Ordering::Relaxed)
    }

    /// Aggregate every ring into per-counter totals, recent-window
    /// rates, and freshness timestamps, sorted by counter name.
    pub fn snapshot(&self) -> LiveSnapshot {
        let now = self.now_ns();
        let mut totals = [0u64; N_LIVE_COUNTERS];
        let mut recent_sum = [0u64; N_LIVE_COUNTERS];
        let mut last_ts = [0u64; N_LIVE_COUNTERS];
        let window_ns = RATE_WINDOW_NS.min(now).max(1);
        let cutoff = now.saturating_sub(window_ns);
        if let Some(rings) = self.rings.get() {
            for ring in rings {
                for (i, t) in totals.iter_mut().enumerate() {
                    *t += ring.total(LiveCounter::ALL[i]);
                }
                for s in ring.recent() {
                    let i = s.counter as usize;
                    last_ts[i] = last_ts[i].max(s.ts_ns);
                    if s.ts_ns >= cutoff {
                        recent_sum[i] += s.delta;
                    }
                }
            }
        }
        let mut counters: Vec<LiveCounterSnap> = LiveCounter::ALL
            .iter()
            .map(|&c| {
                let i = c as usize;
                LiveCounterSnap {
                    name: c.name(),
                    total: totals[i],
                    rate_per_sec: recent_sum[i] as f64 / (window_ns as f64 / 1e9),
                    last_ts_ns: last_ts[i],
                }
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(b.name));
        LiveSnapshot {
            uptime_ns: now,
            counters,
        }
    }
}

/// The process-global live hub (created disabled).
pub fn global() -> &'static LiveHub {
    static GLOBAL: OnceLock<LiveHub> = OnceLock::new();
    GLOBAL.get_or_init(LiveHub::new)
}

/// Periodic progress-frame emitter for one engine loop.
///
/// Created with a label and armed by the global `--progress-every`
/// period; every `period` ticked units it emits one `progress` event to
/// the trace sink (a JSONL progress frame carrying the label, the
/// cumulative unit count, and the exact live totals) plus
/// `progress.<label>` / `live.<counter>` counter samples, which the
/// Perfetto export renders as counter tracks. While the period is 0 a
/// tick is a single integer add.
///
/// Call [`ProgressMeter::finish`] (or just drop the meter) when the
/// loop ends: a final completion frame is emitted so the last partial
/// window — ticks since the last period boundary — is never silently
/// dropped and scrapers always see the 100% state.
#[derive(Debug)]
pub struct ProgressMeter {
    label: &'static str,
    every: u64,
    pending: u64,
    done: u64,
    frames: u64,
    finished: bool,
}

impl ProgressMeter {
    /// A meter for the loop named `label`, armed by the global period.
    pub fn new(label: &'static str) -> Self {
        ProgressMeter::with_period(label, global().progress_every())
    }

    /// A meter with an explicit period (0 = frames disabled), bypassing
    /// the global `--progress-every` setting.
    pub fn with_period(label: &'static str, every: u64) -> Self {
        ProgressMeter {
            label,
            every,
            pending: 0,
            done: 0,
            frames: 0,
            finished: false,
        }
    }

    /// Advance the loop by `units`, emitting a progress frame whenever
    /// the period boundary is crossed.
    #[inline]
    pub fn tick(&mut self, units: u64) {
        self.done += units;
        if self.every == 0 {
            return;
        }
        self.pending += units;
        if self.pending >= self.every {
            self.pending %= self.every;
            self.emit(false);
        }
    }

    /// Units ticked so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Progress frames emitted so far (including the final one).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Mark the loop complete: emits one final progress frame (marked
    /// `"final": "true"`) flushing the last partial window and the
    /// current live totals. Idempotent; also invoked on drop, so early
    /// returns still publish the completion state. No-op while frames
    /// are disabled (period 0).
    pub fn finish(&mut self) {
        if self.finished || self.every == 0 {
            return;
        }
        self.finished = true;
        self.pending = 0;
        self.emit(true);
    }

    fn emit(&mut self, final_frame: bool) {
        self.frames += 1;
        let tracer = crate::trace::global();
        let hub = global();
        let done = self.done.to_string();
        let mut fields = vec![("label", self.label), ("done", done.as_str())];
        if final_frame {
            fields.push(("final", "true"));
        }
        tracer.event("progress", &fields);
        tracer.counter(&format!("progress.{}", self.label), self.done as f64);
        for &c in &LiveCounter::ALL {
            let total = hub.total(c);
            if total > 0 {
                tracer.counter(&format!("live.{}", c.name()), total as f64);
            }
        }
    }
}

impl Drop for ProgressMeter {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_exact_and_samples_decode() {
        let r = ProgressRing::new(8);
        r.record(LiveCounter::FsimGateEvals, 10, 100);
        r.record(LiveCounter::FsimGateEvals, 5, 200);
        r.record(LiveCounter::AtpgVectors, 1, 300);
        assert_eq!(r.total(LiveCounter::FsimGateEvals), 15);
        assert_eq!(r.total(LiveCounter::AtpgVectors), 1);
        assert_eq!(r.recorded(), 3);
        let mut samples = r.recent();
        samples.sort_by_key(|s| s.ts_ns);
        assert_eq!(
            samples,
            vec![
                Sample {
                    ts_ns: 100,
                    counter: LiveCounter::FsimGateEvals,
                    delta: 10
                },
                Sample {
                    ts_ns: 200,
                    counter: LiveCounter::FsimGateEvals,
                    delta: 5
                },
                Sample {
                    ts_ns: 300,
                    counter: LiveCounter::AtpgVectors,
                    delta: 1
                },
            ]
        );
    }

    #[test]
    fn empty_ring_decodes_no_samples() {
        let r = ProgressRing::new(4);
        assert!(r.recent().is_empty());
        assert_eq!(r.total(LiveCounter::FuzzCases), 0);
    }

    #[test]
    fn sample_delta_saturates_but_total_does_not() {
        let r = ProgressRing::new(4);
        r.record(LiveCounter::PipesimCycles, u64::MAX, 1);
        assert_eq!(r.total(LiveCounter::PipesimCycles), u64::MAX);
        let s = r.recent();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].delta, DELTA_MASK);
    }

    #[test]
    fn meter_with_zero_period_never_emits() {
        // Global period defaults to 0 → ticks are pure counting.
        let mut m = ProgressMeter::new("test");
        for _ in 0..1000 {
            m.tick(3);
        }
        assert_eq!(m.done(), 3000);
        m.finish();
        assert_eq!(m.frames(), 0, "period 0 stays silent even at finish");
    }

    #[test]
    fn meter_finish_flushes_partial_window_once() {
        // Period 10, 25 ticks → frames at 10 and 20, plus exactly one
        // final frame for the trailing 5 units. finish() is idempotent
        // and drop must not emit a second final frame.
        let mut m = ProgressMeter::with_period("test_finish", 10);
        for _ in 0..25 {
            m.tick(1);
        }
        assert_eq!(m.frames(), 2);
        m.finish();
        assert_eq!(m.frames(), 3);
        m.finish();
        assert_eq!(m.frames(), 3);
        drop(m);
    }

    #[test]
    fn meter_finish_emits_even_before_first_boundary() {
        let mut m = ProgressMeter::with_period("test_early", 1000);
        m.tick(7);
        assert_eq!(m.frames(), 0);
        m.finish();
        assert_eq!(m.frames(), 1, "early phase end still publishes 100%");
    }
}
