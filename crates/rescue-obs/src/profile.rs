//! Hierarchical phase-attribution profiler: nestable scoped timers that
//! aggregate into a per-thread total-time tree, merged process-wide into
//! path-keyed rows (`atpg/podem`, `atpg/fsim`, …).
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when disabled.** [`scope`] loads one relaxed
//!    atomic and returns an inert guard; no clock read, no TLS touch.
//! 2. **No locks on the hot path.** Each thread accumulates into a
//!    thread-local arena tree; the global mutex is only taken when a
//!    thread's tree is drained (thread exit or explicit
//!    [`flush_thread`]).
//! 3. **Thread-count-invariant paths.** Worker loops open their scopes
//!    with [`scope_root`], which pins the scope under the virtual root
//!    regardless of what the spawning code had open — so the set of
//!    `profile.*` report sections does not depend on `--threads`, which
//!    the `bench-diff` baseline gate requires.
//!
//! The merged rows are resolved into a tree ([`resolve_tree`]) where
//! each node carries *total* time (wall time with the scope open) and
//! *self* time (total minus the sum of direct children) — the invariant
//! `Σ children.total ≤ parent.total` holds per thread because child
//! scopes are strictly nested inside their parent, and is preserved by
//! the merge because every thread contributes the same path shapes.
//! [`render_flame`] prints an indented text flame summary and
//! [`to_trace_records`] lays the aggregate tree out as synthetic spans
//! on a reserved tid so the Perfetto export shows a "profile
//! (aggregate)" track next to the real timelines.

use crate::trace::TraceRecord;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Synthetic thread id used for aggregate profile tracks in the
/// Perfetto export, chosen to stay clear of real `ThreadId` values.
pub const PROFILE_TID: u64 = 9_999;

/// Accumulated wall time and entry count for one tree path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Total nanoseconds with this scope open (summed over entries and
    /// threads).
    pub total_ns: u64,
    /// Number of times the scope was entered.
    pub count: u64,
}

/// One resolved node of the profile tree (see [`resolve_tree`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileNode {
    /// Slash-joined path from the root, e.g. `"atpg/fsim"`.
    pub path: String,
    /// Nesting depth (`"atpg"` is 0, `"atpg/fsim"` is 1).
    pub depth: usize,
    /// Total nanoseconds with the scope open.
    pub total_ns: u64,
    /// Total minus the sum of direct children's totals (saturating).
    pub self_ns: u64,
    /// Entry count.
    pub count: u64,
}

/// One node of a thread-local tree arena.
#[derive(Debug)]
struct LocalNode {
    name: &'static str,
    children: Vec<usize>,
    total_ns: u64,
    count: u64,
}

/// Per-thread profile state: an arena tree plus the open-scope stack.
/// `nodes[0]` is a virtual root that never accumulates time.
#[derive(Debug)]
struct LocalTree {
    nodes: Vec<LocalNode>,
    stack: Vec<usize>,
}

impl LocalTree {
    fn new() -> Self {
        LocalTree {
            nodes: vec![LocalNode {
                name: "",
                children: Vec::new(),
                total_ns: 0,
                count: 0,
            }],
            stack: Vec::new(),
        }
    }

    /// Find or create the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(LocalNode {
            name,
            children: Vec::new(),
            total_ns: 0,
            count: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn enter(&mut self, name: &'static str, pin_to_root: bool) {
        let parent = if pin_to_root {
            0
        } else {
            self.stack.last().copied().unwrap_or(0)
        };
        let idx = self.child(parent, name);
        self.stack.push(idx);
    }

    fn exit(&mut self, elapsed_ns: u64) {
        if let Some(idx) = self.stack.pop() {
            self.nodes[idx].total_ns += elapsed_ns;
            self.nodes[idx].count += 1;
        }
    }

    /// Move every accumulated total into `merged` (keyed by slash path)
    /// and zero the local totals. The arena and stack are kept intact so
    /// guards that are still open remain valid.
    fn drain_into(&mut self, merged: &mut BTreeMap<String, PathStat>) {
        // DFS from the root, building paths as we go.
        let mut work: Vec<(usize, String)> = self.nodes[0]
            .children
            .iter()
            .map(|&c| (c, self.nodes[c].name.to_owned()))
            .collect();
        while let Some((idx, path)) = work.pop() {
            let node = &mut self.nodes[idx];
            if node.count > 0 || node.total_ns > 0 {
                let s = merged.entry(path.clone()).or_default();
                s.total_ns += node.total_ns;
                s.count += node.count;
                node.total_ns = 0;
                node.count = 0;
            }
            let children: Vec<usize> = self.nodes[idx].children.clone();
            for c in children {
                let name = self.nodes[c].name;
                work.push((c, format!("{path}/{name}")));
            }
        }
    }
}

/// TLS wrapper whose `Drop` merges any remaining thread-local totals
/// into the global profiler — this is how FaultShards workers (which
/// exit inside `thread::scope` before report time) contribute.
struct LocalSlot(RefCell<LocalTree>);

impl Drop for LocalSlot {
    fn drop(&mut self) {
        let mut merged = match global().merged.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.0.borrow_mut().drain_into(&mut merged);
    }
}

thread_local! {
    static LOCAL: LocalSlot = LocalSlot(RefCell::new(LocalTree::new()));
}

/// Process-wide profiler: an enable gate plus the merged path table.
#[derive(Debug)]
pub struct Profiler {
    enabled: AtomicBool,
    merged: Mutex<BTreeMap<String, PathStat>>,
}

impl Profiler {
    fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(false),
            merged: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turn scope recording on or off. Scopes already open keep their
    /// recording decision (made at entry).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether scopes currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, PathStat>> {
        match self.merged.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Sorted copy of the merged rows (path → stat), leaving them in
    /// place.
    pub fn snapshot(&self) -> Vec<(String, PathStat)> {
        self.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Drain the merged rows, returning them sorted by path.
    pub fn take(&self) -> Vec<(String, PathStat)> {
        std::mem::take(&mut *self.lock()).into_iter().collect()
    }

    /// Clear all merged rows.
    pub fn reset(&self) {
        self.lock().clear();
    }
}

/// The process-wide profiler used by [`scope`] / [`scope_root`].
pub fn global() -> &'static Profiler {
    static GLOBAL: OnceLock<Profiler> = OnceLock::new();
    GLOBAL.get_or_init(Profiler::new)
}

/// RAII guard for one profile scope. Created by [`scope`] /
/// [`scope_root`]; records elapsed wall time into the thread-local tree
/// on drop. Inert (no clock read) when the profiler was disabled at
/// entry.
#[derive(Debug)]
#[must_use = "the scope is timed until the guard drops"]
pub struct ProfileScope {
    start: Option<Instant>,
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // try_with: the TLS slot may already be gone during thread
            // teardown; losing the final exit is acceptable there.
            let _ = LOCAL.try_with(|slot| slot.0.borrow_mut().exit(elapsed));
        }
    }
}

fn enter(name: &'static str, pin_to_root: bool) -> ProfileScope {
    if !global().enabled() {
        return ProfileScope { start: None };
    }
    let ok = LOCAL
        .try_with(|slot| slot.0.borrow_mut().enter(name, pin_to_root))
        .is_ok();
    ProfileScope {
        start: ok.then(Instant::now),
    }
}

/// Open a profile scope nested under the innermost open scope on this
/// thread (or under the root if none is open).
pub fn scope(name: &'static str) -> ProfileScope {
    enter(name, false)
}

/// Open a profile scope pinned directly under the virtual root,
/// ignoring any scopes the caller has open. Worker loops use this so
/// their paths are identical whether the work ran inline (serial
/// fallback, under `atpg/fsim`) or on a spawned thread.
pub fn scope_root(name: &'static str) -> ProfileScope {
    enter(name, true)
}

/// Merge this thread's accumulated totals into the global table now
/// (threads merge automatically at exit; the main thread calls this
/// before reading [`Profiler::snapshot`]).
pub fn flush_thread() {
    let _ = LOCAL.try_with(|slot| {
        let mut merged = global().lock();
        slot.0.borrow_mut().drain_into(&mut merged);
    });
}

/// Resolve sorted `(path, stat)` rows into tree nodes with self time.
/// Input order does not matter; output is sorted so that every parent
/// precedes its children (lexicographic path order with `/` treated as
/// the separator gives exactly that).
pub fn resolve_tree(rows: &[(String, PathStat)]) -> Vec<ProfileNode> {
    let mut nodes: Vec<ProfileNode> = rows
        .iter()
        .map(|(path, st)| ProfileNode {
            path: path.clone(),
            depth: path.matches('/').count(),
            total_ns: st.total_ns,
            self_ns: st.total_ns,
            count: st.count,
        })
        .collect();
    nodes.sort_by(|a, b| a.path.cmp(&b.path));
    let index: BTreeMap<String, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.path.clone(), i))
        .collect();
    for i in 0..nodes.len() {
        if let Some(cut) = nodes[i].path.rfind('/') {
            let parent_path = nodes[i].path[..cut].to_owned();
            if let Some(&p) = index.get(&parent_path) {
                let child_total = nodes[i].total_ns;
                nodes[p].self_ns = nodes[p].self_ns.saturating_sub(child_total);
            }
        }
    }
    nodes
}

/// Indented text flame summary of a resolved tree: one line per node
/// with total/self milliseconds, entry count, and the node's share of
/// its root's total.
pub fn render_flame(nodes: &[ProfileNode]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("== profile (self-time tree) ==\n");
    if nodes.is_empty() {
        s.push_str("  (no profile scopes recorded)\n");
        return s;
    }
    let _ = writeln!(
        s,
        "  {:44} {:>10} {:>10} {:>8} {:>6}",
        "phase", "total_ms", "self_ms", "count", "pct"
    );
    // Root totals for percentage attribution.
    let mut root_total: BTreeMap<&str, u64> = BTreeMap::new();
    for n in nodes {
        if n.depth == 0 {
            root_total.insert(n.path.as_str(), n.total_ns.max(1));
        }
    }
    for n in nodes {
        let root = n.path.split('/').next().unwrap_or("");
        let denom = root_total.get(root).copied().unwrap_or(1) as f64;
        let pct = 100.0 * n.total_ns as f64 / denom;
        let name = n.path.rsplit('/').next().unwrap_or(&n.path);
        let label = format!("{}{}", "  ".repeat(n.depth), name);
        let _ = writeln!(
            s,
            "  {:44} {:>10.3} {:>10.3} {:>8} {:>5.1}%",
            label,
            n.total_ns as f64 / 1e6,
            n.self_ns as f64 / 1e6,
            n.count,
            pct
        );
    }
    s
}

/// Lay a resolved tree out as synthetic span records on [`PROFILE_TID`]
/// for the Perfetto export: siblings are placed end-to-end starting at
/// their parent's start, so nesting is visually exact (children fit
/// inside parents because `Σ children.total ≤ parent.total`).
pub fn to_trace_records(nodes: &[ProfileNode]) -> Vec<TraceRecord> {
    let mut start_ns: BTreeMap<&str, u64> = BTreeMap::new();
    let mut cursor: BTreeMap<&str, u64> = BTreeMap::new();
    let mut out = Vec::with_capacity(nodes.len());
    let mut root_cursor = 0u64;
    // nodes is parent-before-child sorted (resolve_tree guarantees it).
    for n in nodes {
        let start = if let Some(cut) = n.path.rfind('/') {
            let parent = &n.path[..cut];
            let parent_start = start_ns.get(parent).copied().unwrap_or(0);
            let c = cursor.entry(parent).or_insert(parent_start);
            let s = *c;
            *c += n.total_ns;
            s
        } else {
            let s = root_cursor;
            root_cursor += n.total_ns;
            s
        };
        start_ns.insert(n.path.as_str(), start);
        out.push(TraceRecord::Span {
            name: format!("profile/{}", n.path),
            ts_ns: start,
            dur_ns: n.total_ns,
            depth: n.depth as u64,
            tid: PROFILE_TID,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn rows_with_prefix(prefix: &str) -> Vec<(String, PathStat)> {
        global()
            .snapshot()
            .into_iter()
            .filter(|(p, _)| p == prefix || p.starts_with(&format!("{prefix}/")))
            .collect()
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = locked();
        global().set_enabled(false);
        {
            let _a = scope("t_disabled");
            let _b = scope("inner");
        }
        flush_thread();
        assert!(rows_with_prefix("t_disabled").is_empty());
    }

    #[test]
    fn nested_scopes_build_paths_and_hold_invariant() {
        let _g = locked();
        global().set_enabled(true);
        {
            let _a = scope("t_nest");
            for _ in 0..3 {
                let _b = scope("child");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _c = scope("other");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        flush_thread();
        global().set_enabled(false);
        let rows = rows_with_prefix("t_nest");
        let tree = resolve_tree(&rows);
        let parent = tree.iter().find(|n| n.path == "t_nest").expect("parent");
        let child = tree
            .iter()
            .find(|n| n.path == "t_nest/child")
            .expect("child");
        let other = tree
            .iter()
            .find(|n| n.path == "t_nest/other")
            .expect("other");
        assert_eq!(child.count, 3);
        assert_eq!(other.count, 1);
        // Invariant: Σ direct children total ≤ parent total, and
        // self = total − Σ children.
        assert!(child.total_ns + other.total_ns <= parent.total_ns);
        assert_eq!(
            parent.self_ns,
            parent.total_ns - child.total_ns - other.total_ns
        );
    }

    #[test]
    fn scope_root_ignores_open_parents() {
        let _g = locked();
        global().set_enabled(true);
        {
            let _a = scope("t_outer");
            let _w = scope_root("t_pinned");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        flush_thread();
        global().set_enabled(false);
        let pinned = rows_with_prefix("t_pinned");
        assert_eq!(pinned.len(), 1, "pinned scope must be a root: {pinned:?}");
        assert!(rows_with_prefix("t_outer")
            .iter()
            .all(|(p, _)| !p.contains("t_pinned")));
    }

    #[test]
    fn worker_threads_merge_on_exit() {
        let _g = locked();
        global().set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _w = scope_root("t_worker");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        });
        global().set_enabled(false);
        // `thread::scope` waits for the worker closures, but the TLS
        // destructor doing the merge runs during OS thread teardown,
        // which is not ordered before `scope` returns — poll briefly
        // instead of asserting the very first read.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut rows = rows_with_prefix("t_worker");
        while (rows.len() != 1 || rows[0].1.count != 2) && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
            rows = rows_with_prefix("t_worker");
        }
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.count, 2, "both workers merged: {rows:?}");
    }

    #[test]
    fn trace_records_nest_children_inside_parents() {
        let rows = vec![
            (
                "a".to_owned(),
                PathStat {
                    total_ns: 100,
                    count: 1,
                },
            ),
            (
                "a/x".to_owned(),
                PathStat {
                    total_ns: 40,
                    count: 2,
                },
            ),
            (
                "a/y".to_owned(),
                PathStat {
                    total_ns: 50,
                    count: 1,
                },
            ),
            (
                "b".to_owned(),
                PathStat {
                    total_ns: 7,
                    count: 1,
                },
            ),
        ];
        let tree = resolve_tree(&rows);
        let a = tree.iter().find(|n| n.path == "a").expect("a");
        assert_eq!(a.self_ns, 10);
        let recs = to_trace_records(&tree);
        assert_eq!(recs.len(), 4);
        let span = |name: &str| {
            recs.iter()
                .find_map(|r| match r {
                    TraceRecord::Span {
                        name: n,
                        ts_ns,
                        dur_ns,
                        tid,
                        ..
                    } if n == &format!("profile/{name}") => Some((*ts_ns, *dur_ns, *tid)),
                    _ => None,
                })
                .expect("span present")
        };
        let (as_, ad, atid) = span("a");
        let (xs, xd, _) = span("a/x");
        let (ys, yd, _) = span("a/y");
        let (bs, _, _) = span("b");
        assert_eq!(atid, PROFILE_TID);
        assert!(xs >= as_ && xs + xd <= as_ + ad, "x inside a");
        assert!(ys >= as_ && ys + yd <= as_ + ad, "y inside a");
        assert_eq!(ys, xs + xd, "siblings laid end-to-end");
        assert_eq!(bs, as_ + ad, "roots laid end-to-end");
        let flame = render_flame(&tree);
        assert!(flame.contains("a/x") || flame.contains("  x"), "{flame}");
    }

    #[test]
    fn flame_renders_empty_tree() {
        let flame = render_flame(&[]);
        assert!(flame.contains("no profile scopes"));
    }
}
