//! `TelemetryServer`: a hand-rolled HTTP/1.1 listener on
//! [`std::net::TcpListener`] (zero external dependencies, matching the
//! workspace rule) that exposes the live telemetry surface while an
//! experiment runs:
//!
//! * `GET /metrics` — Prometheus text exposition ([`crate::prometheus`])
//!   over the live-hub rings plus the global [`crate::metrics::Registry`].
//! * `GET /snapshot.json` — the same state as a JSON document built with
//!   the existing [`crate::json`] module.
//! * `GET /healthz` — liveness probe (`ok`).
//!
//! The server runs on its own thread with a non-blocking accept loop and
//! shuts down gracefully on [`TelemetryServer::shutdown`] (or drop). It
//! binds any address `std::net` accepts; port `0` picks an ephemeral
//! port, reported by [`TelemetryServer::addr`] — which is how the CI
//! smoke job and the in-process tests avoid port collisions.

use crate::json::{self, JsonObj};
use crate::live::LiveSnapshot;
use crate::metrics::RegistrySnapshot;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval while idle.
const POLL: Duration = Duration::from_millis(15);

/// Per-connection read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Maximum accepted request head size.
const MAX_REQUEST: usize = 8 * 1024;

/// A running telemetry endpoint. See the module docs.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9200`, or port `0` for ephemeral),
    /// enable the global live hub, and start serving on a new thread.
    /// `title` is echoed in `/snapshot.json`.
    pub fn start(addr: &str, title: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        crate::live::global().set_enabled(true);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let title = title.to_owned();
        let handle = std::thread::Builder::new()
            .name("telemetry".to_owned())
            .spawn(move || serve(listener, &stop2, &title))?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, finish in-flight responses, and join the serve
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, stop: &AtomicBool, title: &str) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: responses are small and generated from
                // in-memory snapshots, so a slow scraper can only delay
                // the next scrape, never the engines.
                let _ = handle(stream, title);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle(mut stream: TcpStream, title: &str) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST {
            return respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain",
                "too large\n",
            );
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or_default();
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match path {
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/metrics" => {
            let body = crate::prometheus::render(
                &crate::live::global().snapshot(),
                &crate::metrics::global().snapshot(),
            );
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/snapshot.json" => {
            let body = snapshot_json(
                title,
                &crate::live::global().snapshot(),
                &crate::metrics::global().snapshot(),
            );
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Build the `/snapshot.json` document: run title, hub uptime, the
/// rate-estimation window, live counter aggregates (each with its
/// exact total *and* trailing-window `rate_per_sec`, so scrapers never
/// need to diff two snapshots), and the full registry snapshot (all
/// name-sorted).
pub fn snapshot_json(title: &str, live: &LiveSnapshot, reg: &RegistrySnapshot) -> String {
    let live_counters: Vec<String> = live
        .counters
        .iter()
        .map(|c| {
            let mut o = JsonObj::new();
            o.str("name", c.name)
                .u64("total", c.total)
                .f64("rate_per_sec", c.rate_per_sec)
                .u64("last_ts_ns", c.last_ts_ns);
            o.finish()
        })
        .collect();
    let mut counters = JsonObj::new();
    for (name, v) in &reg.counters {
        counters.u64(name, *v);
    }
    let mut gauges = JsonObj::new();
    for (name, v) in &reg.gauges {
        gauges.i64(name, *v);
    }
    let mut histograms = JsonObj::new();
    for (name, h) in &reg.histograms {
        let mut ho = JsonObj::new();
        ho.u64("count", h.count)
            .u64("sum", h.sum)
            .u64("min", h.min)
            .u64("max", h.max)
            .f64("mean", h.mean())
            .arr_u64("buckets", &h.buckets);
        histograms.raw(name, &ho.finish());
    }
    let mut live_obj = JsonObj::new();
    live_obj.raw("counters", &json::array(&live_counters));
    let mut reg_obj = JsonObj::new();
    reg_obj
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms.finish());
    let mut o = JsonObj::new();
    o.str("title", title)
        .u64("uptime_ns", live.uptime_ns)
        .u64("rate_window_ns", crate::live::RATE_WINDOW_NS)
        .raw("live", &live_obj.finish())
        .raw("registry", &reg_obj.finish());
    o.finish()
}
