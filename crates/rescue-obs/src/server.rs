//! `TelemetryServer`: the live telemetry surface while an experiment
//! runs, built on the reusable [`crate::http`] listener (zero external
//! dependencies, matching the workspace rule):
//!
//! * `GET /metrics` — Prometheus text exposition ([`crate::prometheus`])
//!   over the live-hub rings plus the global [`crate::metrics::Registry`].
//! * `GET /snapshot.json` — the same state as a JSON document built with
//!   the existing [`crate::json`] module.
//! * `GET /healthz` — liveness probe (`ok`).
//!
//! Routing matches on the normalized path (query strings and malformed
//! request-line fragments are stripped by [`crate::http`]), `HEAD` is
//! answered headers-only, and each connection is served on its own
//! short-lived thread so one stalled client never blocks a concurrent
//! scraper. The server shuts down gracefully on
//! [`TelemetryServer::shutdown`] (or drop). It binds any address
//! `std::net` accepts; port `0` picks an ephemeral port, reported by
//! [`TelemetryServer::addr`] — which is how the CI smoke job and the
//! in-process tests avoid port collisions.

use crate::http::{write_response, HttpOptions, HttpServer, Request, Response};
use crate::json::{self, JsonObj};
use crate::live::LiveSnapshot;
use crate::metrics::RegistrySnapshot;
use std::net::{SocketAddr, TcpStream};

/// A running telemetry endpoint. See the module docs.
#[derive(Debug)]
pub struct TelemetryServer {
    inner: HttpServer,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9200`, or port `0` for ephemeral),
    /// enable the global live hub, and start serving on a new thread.
    /// `title` is echoed in `/snapshot.json`.
    pub fn start(addr: &str, title: &str) -> std::io::Result<TelemetryServer> {
        crate::live::global().set_enabled(true);
        let title = title.to_owned();
        let inner = HttpServer::start(
            addr,
            "telemetry",
            HttpOptions::default(),
            move |req: Request, stream: &mut TcpStream| {
                let head_only = req.is_head();
                let resp = route_telemetry(&req, &title)
                    .unwrap_or_else(|| Response::text("405 Method Not Allowed", "GET only\n"));
                write_response(stream, &resp, head_only)
            },
        )?;
        Ok(TelemetryServer { inner })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stop accepting, finish in-flight responses, and join the serve
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

/// Route a telemetry request against the global live hub and metrics
/// registry. Returns `None` for methods other than `GET`/`HEAD` (the
/// caller answers 405) so other servers — the `rescue-serve` job
/// daemon mounts these same endpoints — can layer their own routes on
/// top.
pub fn route_telemetry(req: &Request, title: &str) -> Option<Response> {
    if req.method != "GET" && req.method != "HEAD" {
        return None;
    }
    Some(match req.path.as_str() {
        "/healthz" => Response::text("200 OK", "ok\n"),
        "/metrics" => {
            let body = crate::prometheus::render(
                &crate::live::global().snapshot(),
                &crate::metrics::global().snapshot(),
            );
            Response::ok("text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/snapshot.json" => {
            let body = snapshot_json(
                title,
                &crate::live::global().snapshot(),
                &crate::metrics::global().snapshot(),
            );
            Response::ok("application/json", body)
        }
        _ => Response::not_found(),
    })
}

/// Build the `/snapshot.json` document: run title, hub uptime, the
/// rate-estimation window, live counter aggregates (each with its
/// exact total *and* trailing-window `rate_per_sec`, so scrapers never
/// need to diff two snapshots), and the full registry snapshot (all
/// name-sorted).
pub fn snapshot_json(title: &str, live: &LiveSnapshot, reg: &RegistrySnapshot) -> String {
    let live_counters: Vec<String> = live
        .counters
        .iter()
        .map(|c| {
            let mut o = JsonObj::new();
            o.str("name", c.name)
                .u64("total", c.total)
                .f64("rate_per_sec", c.rate_per_sec)
                .u64("last_ts_ns", c.last_ts_ns);
            o.finish()
        })
        .collect();
    let mut counters = JsonObj::new();
    for (name, v) in &reg.counters {
        counters.u64(name, *v);
    }
    let mut gauges = JsonObj::new();
    for (name, v) in &reg.gauges {
        gauges.i64(name, *v);
    }
    let mut histograms = JsonObj::new();
    for (name, h) in &reg.histograms {
        let mut ho = JsonObj::new();
        ho.u64("count", h.count)
            .u64("sum", h.sum)
            .u64("min", h.min)
            .u64("max", h.max)
            .f64("mean", h.mean())
            .arr_u64("buckets", &h.buckets);
        histograms.raw(name, &ho.finish());
    }
    let mut live_obj = JsonObj::new();
    live_obj.raw("counters", &json::array(&live_counters));
    let mut reg_obj = JsonObj::new();
    reg_obj
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms.finish());
    let mut o = JsonObj::new();
    o.str("title", title)
        .u64("uptime_ns", live.uptime_ns)
        .u64("rate_window_ns", crate::live::RATE_WINDOW_NS)
        .raw("live", &live_obj.finish())
        .raw("registry", &reg_obj.finish());
    o.finish()
}
