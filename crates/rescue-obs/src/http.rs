//! Reusable hand-rolled HTTP/1.1 machinery over [`std::net`] (zero
//! external dependencies, matching the workspace rule).
//!
//! This module generalizes what used to be embedded in
//! [`crate::server`]: request parsing with hard limits, response
//! writing, and a threaded listener. Two servers build on it — the
//! [`crate::server::TelemetryServer`] scrape endpoint and the
//! `rescue-serve` job daemon — so the request/response corner cases are
//! fixed once, here:
//!
//! * the request **target is split into path and query string** before
//!   routing (`GET /metrics?x=1` routes as `/metrics`); only when the
//!   request line is malformed (no separate version token) is a glued
//!   trailing `HTTP/…` fragment stripped, so well-formed targets keep
//!   `HTTP/` substrings (e.g. `?proto=HTTP/2`) intact;
//! * a client that **connects and closes** (or sends nothing) gets no
//!   response bytes at all — not a 405;
//! * **`HEAD` is answered headers-only** with the real
//!   `Content-Length`, so Prometheus-compatible probes work;
//! * each accepted connection is served on a **short-lived thread**, so
//!   one stalled client cannot head-of-line-block other scrapers; a cap
//!   bounds concurrent connections. Excess connections get `503` from a
//!   separately capped pool of shed threads ([`SHED_CAP`]); past that a
//!   connect flood has its sockets dropped outright, so total threads
//!   and attacker-controlled reads stay bounded.
//!
//! The listener owns an accept thread with a non-blocking poll loop and
//! shuts down gracefully on [`HttpServer::shutdown`] (or drop), waiting
//! briefly for in-flight connections to finish.

use std::io::{Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Accept-loop poll ceiling when idle. Polling starts at
/// [`POLL_FLOOR`] right after a connection and backs off exponentially
/// to this, so an active server adds well under a millisecond of
/// accept latency while an idle one sleeps almost all the time.
const POLL: Duration = Duration::from_millis(15);

/// Accept-loop poll interval immediately after activity.
const POLL_FLOOR: Duration = Duration::from_micros(500);

/// How long `shutdown` waits for in-flight connection threads.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Ceiling on concurrent shed (`503`) threads. Connections over
/// `max_connections` are rejected on a short-lived thread (the write
/// plus a bounded drain can take ~200ms, too long for the accept
/// loop); this cap keeps a connect flood from turning those threads
/// into an unbounded resource — past it, excess sockets are dropped
/// without a response.
const SHED_CAP: usize = 4;

/// Tuning knobs for a listener.
#[derive(Clone, Debug)]
pub struct HttpOptions {
    /// Maximum accepted request head size in bytes.
    pub max_head: usize,
    /// Maximum accepted request body size in bytes (`Content-Length`
    /// above this is rejected with `413` without reading the body).
    pub max_body: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Maximum connections served concurrently; excess get `503`.
    pub max_connections: usize,
}

impl Default for HttpOptions {
    fn default() -> Self {
        HttpOptions {
            max_head: 8 * 1024,
            max_body: 0,
            read_timeout: Duration::from_secs(2),
            max_connections: 32,
        }
    }
}

/// One parsed HTTP request.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Request method, as sent (`GET`, `HEAD`, `POST`, …).
    pub method: String,
    /// Path with the query string (and any glued `HTTP/…` fragment)
    /// already stripped — route on this.
    pub path: String,
    /// Query string after `?`, without the `?` (empty when absent).
    pub query: String,
    /// Headers as `(lowercased-name, value)` pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (read per `Content-Length`; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the response should be headers-only.
    pub fn is_head(&self) -> bool {
        self.method == "HEAD"
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum RequestOutcome {
    /// A parseable request.
    Ok(Request),
    /// The client closed (or sent nothing) before a request line
    /// arrived: write nothing back.
    Empty,
    /// Malformed or over-limit input: answer with this canned response
    /// and close.
    Reject(Response),
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status line text after `HTTP/1.1 `, e.g. `200 OK`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given type and body.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: "200 OK",
            content_type,
            body,
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: &'static str, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain",
            body: body.to_owned(),
        }
    }

    /// The stock `404 Not Found`.
    pub fn not_found() -> Response {
        Response::text("404 Not Found", "not found\n")
    }
}

/// Read and parse one request. `Err` is an I/O failure (including read
/// timeout) where nothing sensible can be written back.
pub fn read_request(stream: &mut TcpStream, opts: &HttpOptions) -> std::io::Result<RequestOutcome> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(opts.read_timeout))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&head) {
            break pos;
        }
        if head.len() >= opts.max_head {
            return Ok(RequestOutcome::Reject(Response::text(
                "431 Request Header Fields Too Large",
                "too large\n",
            )));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Connection closed before the head completed. An empty
                // (or whitespace-only) prefix means the client never
                // sent a request — answer nothing. A torn partial head
                // is malformed.
                if head.iter().all(|b| b.is_ascii_whitespace()) {
                    return Ok(RequestOutcome::Empty);
                }
                return Ok(RequestOutcome::Reject(Response::text(
                    "400 Bad Request",
                    "truncated request\n",
                )));
            }
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    };
    let body_start = head.split_off(header_end);

    let head_text = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default().trim();
    if request_line.is_empty() {
        return Ok(RequestOutcome::Empty);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default();
    let has_version = parts.next().is_some();

    // A malformed request line can glue the version onto the target
    // (`/metricsHTTP/1.1`). Only when the line has no separate version
    // token, strip the trailing `HTTP/` fragment from the target's last
    // half; a well-formed line keeps `HTTP/` substrings in the path or
    // query intact (e.g. `?proto=HTTP/2`).
    let strip_version = |s: &str| -> String {
        if has_version {
            return s.to_owned();
        }
        match s.rfind("HTTP/") {
            Some(i) => s[..i].to_owned(),
            None => s.to_owned(),
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), strip_version(q)),
        None => (strip_version(target), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }

    let mut req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    let content_length = match req.header("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Ok(RequestOutcome::Reject(Response::text(
                    "400 Bad Request",
                    "bad content-length\n",
                )))
            }
        },
        None => 0,
    };
    if content_length > opts.max_body {
        return Ok(RequestOutcome::Reject(Response::text(
            "413 Content Too Large",
            "body too large\n",
        )));
    }
    let mut body = body_start;
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => {
                return Ok(RequestOutcome::Reject(Response::text(
                    "400 Bad Request",
                    "truncated body\n",
                )))
            }
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    req.body = body;
    Ok(RequestOutcome::Ok(req))
}

/// Offset just past the `\r\n\r\n` head terminator, if present.
fn find_header_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// Send a reject/shed response and close cleanly even though the
/// request was not fully read: write the response, FIN our write half
/// so the client sees EOF immediately, then drain (bounded) whatever
/// the client already sent. Closing with unread bytes in the kernel
/// buffer would send RST and can destroy the response before the
/// client reads it.
fn reject_and_close(stream: &mut TcpStream, resp: &Response) {
    let _ = write_response(stream, resp, false);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

/// Write `resp` to `w`. When `head_only` (a `HEAD` request), the
/// headers — including the real `Content-Length` — are sent without the
/// body.
pub fn write_response(w: &mut dyn Write, resp: &Response, head_only: bool) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.content_type,
        resp.body.len()
    );
    w.write_all(head.as_bytes())?;
    if !head_only {
        w.write_all(resp.body.as_bytes())?;
    }
    w.flush()
}

/// Start a streaming response: status line and headers **without**
/// `Content-Length` — the body is whatever is written afterwards, and
/// the message is terminated by closing the connection
/// (`Connection: close` framing). Used for JSONL progress streams.
pub fn write_stream_head(
    w: &mut dyn Write,
    status: &str,
    content_type: &str,
) -> std::io::Result<()> {
    let head =
        format!("HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n");
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// A connection handler: receives the parsed request and the stream,
/// and is responsible for writing the full response (usually via
/// [`write_response`], or [`write_stream_head`] plus incremental
/// writes).
pub trait Handler: Send + Sync + 'static {
    /// Serve one request. I/O errors are logged nowhere and close the
    /// connection — the peer is gone either way.
    fn handle(&self, req: Request, stream: &mut TcpStream) -> std::io::Result<()>;
}

impl<F> Handler for F
where
    F: Fn(Request, &mut TcpStream) -> std::io::Result<()> + Send + Sync + 'static,
{
    fn handle(&self, req: Request, stream: &mut TcpStream) -> std::io::Result<()> {
        self(req, stream)
    }
}

/// A running threaded listener. See the module docs.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (port `0` picks an ephemeral port) and serve
    /// `handler` on a new accept thread named `name`.
    pub fn start(
        addr: &str,
        name: &str,
        opts: HttpOptions,
        handler: impl Handler,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let handler: Arc<dyn Handler> = Arc::new(handler);
        let handle = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || accept_loop(listener, &accept_stop, &accept_active, &opts, &handler))?;
        Ok(HttpServer {
            addr,
            stop,
            active,
            handle: Some(handle),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Stop accepting, wait briefly for in-flight connections, and join
    /// the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while self.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements a thread-count (active connections, or shed threads)
/// when the owning thread exits, however it exits — including the
/// spawn itself failing, which drops the not-yet-run closure.
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: &AtomicBool,
    active: &Arc<AtomicUsize>,
    opts: &HttpOptions,
    handler: &Arc<dyn Handler>,
) {
    let shedding = Arc::new(AtomicUsize::new(0));
    let mut backoff = POLL_FLOOR;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                backoff = POLL_FLOOR;
                // Admission: over the cap, shed with 503. The write and
                // the bounded drain happen off the accept thread so a
                // connect flood cannot stall admission of new sockets —
                // and the shed threads are themselves capped, so the
                // flood cannot grow threads (or attacker-fed drains)
                // without bound: past SHED_CAP the socket is dropped
                // with no response at all.
                if active.load(Ordering::Acquire) >= opts.max_connections {
                    if shedding.load(Ordering::Acquire) >= SHED_CAP {
                        drop(stream);
                        continue;
                    }
                    shedding.fetch_add(1, Ordering::AcqRel);
                    let guard = ActiveGuard(Arc::clone(&shedding));
                    let _ = std::thread::Builder::new()
                        .name("http-shed".to_owned())
                        .spawn(move || {
                            let _guard = guard;
                            reject_and_close(
                                &mut stream,
                                &Response::text(
                                    "503 Service Unavailable",
                                    "too many connections\n",
                                ),
                            );
                        });
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                let guard = ActiveGuard(Arc::clone(active));
                let opts = opts.clone();
                let handler = Arc::clone(handler);
                // Short-lived thread per connection: a stalled client
                // burns its own thread for at most the read timeout,
                // never the accept loop. Spawn failure (thread
                // exhaustion) just drops the connection.
                let _ = std::thread::Builder::new()
                    .name("http-conn".to_owned())
                    .spawn(move || {
                        let _guard = guard;
                        serve_connection(&mut stream, &opts, &handler);
                    });
            }
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(POLL);
            }
        }
    }
}

/// Serve one connection: read, dispatch, respond to rejects.
fn serve_connection(stream: &mut TcpStream, opts: &HttpOptions, handler: &Arc<dyn Handler>) {
    match read_request(stream, opts) {
        Ok(RequestOutcome::Ok(req)) => {
            let _ = handler.handle(req, stream);
        }
        Ok(RequestOutcome::Reject(resp)) => {
            reject_and_close(stream, &resp);
        }
        Ok(RequestOutcome::Empty) | Err(_) => {}
    }
}
