//! Zero-dependency observability substrate for the Rescue engines.
//!
//! The paper's evaluation is driven by long engine loops — PODEM over
//! ~10⁴ collapsed faults, bit-parallel fault simulation, cycle-level
//! pipeline simulation — and this crate is the measurement layer those
//! loops report through:
//!
//! * [`metrics`] — typed counters, gauges, and log₂-bucket histograms
//!   cheap enough (one relaxed atomic op) to live in the PODEM inner
//!   loop, plus a name-keyed [`metrics::Registry`] for ad-hoc use;
//! * [`trace`] — a span/event tracer with monotonic timestamps, an
//!   optional JSONL sink, and an aggregated per-span summary. A process
//!   global ([`trace::global`]) lets deep engine code open spans without
//!   threading a handle through every API;
//! * [`report`] — a [`report::Report`] builder that renders a
//!   human-readable end-of-run breakdown and a machine-readable JSON
//!   document (the `BENCH_metrics.json` artifact);
//! * [`coverage`] — per-vector coverage provenance for the ATPG loop: a
//!   [`coverage::CoverageRecorder`] turns first-detection events into a
//!   deterministic [`coverage::CoverageCurve`] with per-component
//!   attribution, serializable as CSV and JSON;
//! * [`perfetto`] — converts traces (live records or `--trace-json`
//!   JSONL) into Chrome trace-event JSON for `chrome://tracing` /
//!   [ui.perfetto.dev](https://ui.perfetto.dev), including counter
//!   tracks;
//! * [`json`] — the hand-rolled JSON serializer and parser behind the
//!   sinks, the Perfetto converter, and `bench-diff` (the build
//!   environment is offline, so no serde);
//! * [`live`] — lock-free per-worker progress rings plus a snapshot
//!   aggregator: the pull-able live-progress surface for long engine
//!   loops, and the [`live::ProgressMeter`] that mirrors progress as
//!   JSONL frames and Perfetto counter tracks;
//! * [`profile`] — hierarchical phase-attribution profiler: nestable
//!   scoped timers aggregated into a per-thread self-time/total-time
//!   tree, merged across worker threads, rendered as `profile.*` report
//!   sections, a text flame summary, and Perfetto aggregate tracks;
//! * [`prometheus`] — pure renderer for the Prometheus text exposition
//!   served at `/metrics`;
//! * [`http`] — reusable hand-rolled HTTP/1.1 machinery on `std::net`:
//!   request parsing with hard limits, path normalization, `HEAD`
//!   handling, and a threaded listener with a connection cap — shared
//!   by the telemetry server and the `rescue-serve` job daemon;
//! * [`server`] — [`server::TelemetryServer`], the telemetry endpoint
//!   serving `/metrics`, `/snapshot.json`, and `/healthz` on its own
//!   thread via [`http::HttpServer`];
//! * [`rng`] — a seedable SplitMix64 generator replacing the `rand`
//!   crate everywhere in the workspace.
//!
//! # Example
//!
//! ```
//! use rescue_obs::metrics::{Counter, Histogram};
//!
//! let backtracks = Counter::new();
//! let per_fault = Histogram::new();
//! for fault in 0..100u64 {
//!     let n = fault % 7; // backtracks this fault took
//!     backtracks.add(n);
//!     per_fault.record(n);
//! }
//! assert_eq!(backtracks.get(), (0..100u64).map(|f| f % 7).sum());
//! assert_eq!(per_fault.snapshot().count, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod http;
pub mod json;
pub mod live;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod prometheus;
pub mod report;
pub mod rng;
pub mod server;
pub mod trace;

pub use coverage::{CoverageCurve, CoverageRecorder};
pub use live::{LiveCounter, LiveSnapshot, ProgressMeter, ProgressRing};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use report::{Report, RobustStats};
pub use rng::SplitMix64;
pub use server::TelemetryServer;
pub use trace::{counter, global, span, SpanGuard, SpanStat, TraceRecord, Tracer};
