//! Per-vector coverage provenance for test-generation engines.
//!
//! The ATPG loop detects each fault exactly once — either by the vector
//! PODEM built for it or by fault simulation of a later vector — and a
//! [`CoverageRecorder`] captures that moment as a (vector index,
//! attribution label) event. [`CoverageRecorder::finish`] folds the
//! events into a [`CoverageCurve`]: the faults newly detected by each
//! vector, the cumulative coverage after each vector, and a per-label
//! attribution table (labels are free-form — the netlist's ICI component
//! names in practice, rolled up to pipeline stages by the caller).
//!
//! The curve is plain deterministic data (`Eq`), so it participates in
//! the workspace's golden determinism tests, and it serializes itself to
//! CSV and JSON for offline plotting.
//!
//! ```
//! use rescue_obs::coverage::CoverageRecorder;
//! let mut rec = CoverageRecorder::new();
//! let alu = rec.label("alu");
//! let dec = rec.label("decode");
//! rec.detect(0, alu);
//! rec.detect(0, dec);
//! rec.detect(2, alu);
//! let curve = rec.finish(4, 3);
//! assert_eq!(curve.detected_total(), 3);
//! assert_eq!(curve.points.len(), 2); // vectors 0 and 2 detected something
//! assert!((curve.final_coverage() - 0.75).abs() < 1e-12);
//! ```

use crate::json::{self, JsonObj};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Interned attribution label handle (cheap to copy into hot loops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelId(u32);

/// Accumulates first-detection events during an engine run.
#[derive(Clone, Debug, Default)]
pub struct CoverageRecorder {
    labels: Vec<String>,
    by_name: BTreeMap<String, u32>,
    /// (vector index, label) per newly detected fault, in arrival order.
    events: Vec<(u64, u32)>,
}

impl CoverageRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an attribution label (idempotent).
    pub fn label(&mut self, name: &str) -> LabelId {
        if let Some(&i) = self.by_name.get(name) {
            return LabelId(i);
        }
        let i = self.labels.len() as u32;
        self.labels.push(name.to_owned());
        self.by_name.insert(name.to_owned(), i);
        LabelId(i)
    }

    /// Record one fault first detected by vector `vector`, attributed to
    /// `label`. Events may arrive out of vector order; [`finish`] sorts.
    ///
    /// [`finish`]: CoverageRecorder::finish
    pub fn detect(&mut self, vector: u64, label: LabelId) {
        self.events.push((vector, label.0));
    }

    /// Events recorded so far (one per detected fault).
    pub fn detected_so_far(&self) -> u64 {
        self.events.len() as u64
    }

    /// Fold the events into a curve. `targetable` is the coverage
    /// denominator (detected + never-detected targetable faults) and
    /// `vectors` the total vector count of the run — both are only known
    /// once the run completes.
    pub fn finish(mut self, targetable: u64, vectors: u64) -> CoverageCurve {
        self.events.sort_unstable();
        let mut points: Vec<CoveragePoint> = Vec::new();
        let mut label_counts = vec![0u64; self.labels.len()];
        let mut cumulative = 0u64;
        for &(vector, label) in &self.events {
            cumulative += 1;
            label_counts[label as usize] += 1;
            match points.last_mut() {
                Some(p) if p.vector == vector => {
                    p.new_detected += 1;
                    p.cumulative_detected = cumulative;
                }
                _ => points.push(CoveragePoint {
                    vector,
                    new_detected: 1,
                    cumulative_detected: cumulative,
                }),
            }
        }
        let mut attribution: Vec<(String, u64)> = self
            .labels
            .into_iter()
            .zip(label_counts)
            .filter(|&(_, n)| n > 0)
            .collect();
        attribution.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        CoverageCurve {
            targetable,
            vectors,
            points,
            attribution,
        }
    }
}

/// One step of the coverage curve: a vector that detected at least one
/// new fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoveragePoint {
    /// Zero-based vector index.
    pub vector: u64,
    /// Faults first detected by this vector.
    pub new_detected: u64,
    /// Total faults detected by vectors `0..=vector`.
    pub cumulative_detected: u64,
}

/// The finished per-vector coverage curve with attribution. Plain
/// deterministic data: two runs with the same seed produce equal curves.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageCurve {
    /// Coverage denominator (targetable fault count).
    pub targetable: u64,
    /// Total vectors the run generated.
    pub vectors: u64,
    /// Vectors that detected at least one new fault, ascending.
    pub points: Vec<CoveragePoint>,
    /// (label, faults detected) pairs, by descending count then name.
    pub attribution: Vec<(String, u64)>,
}

impl CoverageCurve {
    /// Total faults detected (the last point's cumulative count).
    pub fn detected_total(&self) -> u64 {
        self.points.last().map_or(0, |p| p.cumulative_detected)
    }

    /// Final coverage: detected / targetable (1.0 when nothing was
    /// targetable, matching the ATPG convention).
    pub fn final_coverage(&self) -> f64 {
        if self.targetable == 0 {
            1.0
        } else {
            self.detected_total() as f64 / self.targetable as f64
        }
    }

    /// Re-aggregate the attribution through `map` (e.g. component name →
    /// pipeline stage). Returns (mapped label, detected) pairs by
    /// descending count then name.
    pub fn rollup(&self, map: impl Fn(&str) -> String) -> Vec<(String, u64)> {
        let mut acc: BTreeMap<String, u64> = BTreeMap::new();
        for (label, n) in &self.attribution {
            *acc.entry(map(label)).or_default() += n;
        }
        let mut out: Vec<(String, u64)> = acc.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Header line for [`to_csv`] output.
    ///
    /// [`to_csv`]: CoverageCurve::to_csv
    pub fn csv_header() -> &'static str {
        "design,vector,new_detected,cumulative_detected,cumulative_coverage\n"
    }

    /// CSV rows (no header) for this curve, tagged with `design` in the
    /// first column so several curves can share one file.
    pub fn to_csv(&self, design: &str) -> String {
        let mut s = String::new();
        for p in &self.points {
            let cov = if self.targetable == 0 {
                1.0
            } else {
                p.cumulative_detected as f64 / self.targetable as f64
            };
            let _ = writeln!(
                s,
                "{design},{},{},{},{}",
                p.vector,
                p.new_detected,
                p.cumulative_detected,
                json::fmt_f64(cov)
            );
        }
        s
    }

    /// JSON document for this curve:
    /// `{"design", "targetable", "detected", "vectors",
    /// "final_coverage", "points": [{"vector", "new_detected",
    /// "cumulative_detected"}], "attribution": [{"label", "detected"}]}`.
    pub fn to_json(&self, design: &str) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut o = JsonObj::new();
                o.u64("vector", p.vector)
                    .u64("new_detected", p.new_detected)
                    .u64("cumulative_detected", p.cumulative_detected);
                o.finish()
            })
            .collect();
        let attribution: Vec<String> = self
            .attribution
            .iter()
            .map(|(label, n)| {
                let mut o = JsonObj::new();
                o.str("label", label).u64("detected", *n);
                o.finish()
            })
            .collect();
        let mut o = JsonObj::new();
        o.str("design", design)
            .u64("targetable", self.targetable)
            .u64("detected", self.detected_total())
            .u64("vectors", self.vectors)
            .f64("final_coverage", self.final_coverage())
            .raw("points", &json::array(&points))
            .raw("attribution", &json::array(&attribution));
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_curve() -> CoverageCurve {
        let mut rec = CoverageRecorder::new();
        let a = rec.label("a");
        let b = rec.label("b");
        // Deliberately out of vector order.
        rec.detect(5, a);
        rec.detect(0, b);
        rec.detect(0, a);
        rec.detect(2, b);
        rec.finish(8, 6)
    }

    #[test]
    fn points_are_sorted_and_cumulative_monotone() {
        let c = sample_curve();
        let vectors: Vec<u64> = c.points.iter().map(|p| p.vector).collect();
        assert_eq!(vectors, vec![0, 2, 5]);
        let mut prev = 0;
        for p in &c.points {
            assert!(p.cumulative_detected > prev, "strictly increasing");
            assert!(p.new_detected > 0);
            prev = p.cumulative_detected;
        }
        assert_eq!(c.detected_total(), 4);
        assert!((c.final_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn attribution_sums_to_detected_total() {
        let c = sample_curve();
        let sum: u64 = c.attribution.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, c.detected_total());
        assert_eq!(c.attribution.len(), 2);
    }

    #[test]
    fn rollup_reaggregates() {
        let c = sample_curve();
        let rolled = c.rollup(|_| "all".to_owned());
        assert_eq!(rolled, vec![("all".to_owned(), 4)]);
    }

    #[test]
    fn empty_curve_conventions() {
        let c = CoverageRecorder::new().finish(0, 0);
        assert_eq!(c.detected_total(), 0);
        assert_eq!(c.final_coverage(), 1.0);
        assert!(c.points.is_empty());
        assert_eq!(c.to_csv("x"), "");
    }

    #[test]
    fn csv_and_json_render() {
        let c = sample_curve();
        let csv = c.to_csv("rescue");
        assert_eq!(csv.lines().count(), c.points.len());
        assert!(csv.starts_with("rescue,0,2,2,0.25"));
        let doc = crate::json::parse(&c.to_json("rescue")).expect("valid json");
        assert_eq!(
            doc.get("detected").and_then(|v| v.as_int()),
            Some(c.detected_total() as i128)
        );
        assert_eq!(
            doc.get("points").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(c.points.len())
        );
    }
}
