//! End-of-run report assembly: a human-readable breakdown for stderr and
//! a machine-readable JSON document (the `BENCH_metrics.json` artifact).

use crate::json::{self, JsonObj};
use crate::metrics::HistogramSnapshot;
use crate::trace::SpanStat;
use std::fmt::Write as _;

/// Robust summary statistics over repeated measurements of one metric
/// (the `--repeat N` bench mode). Median/MAD/IQR rather than mean/σ so
/// a single scheduler hiccup cannot drag the summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RobustStats {
    /// Number of samples.
    pub n: u64,
    /// Sample median (linear-interpolation quantile).
    pub median: f64,
    /// Median absolute deviation from the median.
    pub mad: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Interquartile range (q75 − q25, linear interpolation).
    pub iqr: f64,
}

impl RobustStats {
    /// Summarize `samples` (empty input yields all-zero stats).
    pub fn from_samples(samples: &[f64]) -> RobustStats {
        if samples.is_empty() {
            return RobustStats::default();
        }
        let mut s: Vec<f64> = samples.to_vec();
        s.sort_by(f64::total_cmp);
        let median = quantile(&s, 0.5);
        let mut dev: Vec<f64> = s.iter().map(|x| (x - median).abs()).collect();
        dev.sort_by(f64::total_cmp);
        RobustStats {
            n: samples.len() as u64,
            median,
            mad: quantile(&dev, 0.5),
            min: s[0],
            max: s[s.len() - 1],
            iqr: quantile(&s, 0.75) - quantile(&s, 0.25),
        }
    }
}

/// Linear-interpolation quantile of an ascending-sorted, non-empty
/// slice (`q` in `[0, 1]`).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// One metric value inside a report section.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Free-form string.
    Str(String),
    /// Histogram snapshot.
    Hist(HistogramSnapshot),
    /// Robust statistics over repeated runs.
    Stats(RobustStats),
}

/// A named group of metrics (one engine or phase).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Section {
    /// Section name (e.g. `"table3.baseline.podem"`).
    pub name: String,
    /// Ordered (key, value) entries.
    pub entries: Vec<(String, Value)>,
}

impl Section {
    /// Append an unsigned integer entry.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.entries.push((k.to_owned(), Value::U64(v)));
        self
    }

    /// Append a signed integer entry.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.entries.push((k.to_owned(), Value::I64(v)));
        self
    }

    /// Append a float entry.
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.entries.push((k.to_owned(), Value::F64(v)));
        self
    }

    /// Append a string entry.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.entries.push((k.to_owned(), Value::Str(v.to_owned())));
        self
    }

    /// Append a histogram entry.
    pub fn hist(&mut self, k: &str, v: HistogramSnapshot) -> &mut Self {
        self.entries.push((k.to_owned(), Value::Hist(v)));
        self
    }

    /// Append a robust-statistics entry.
    pub fn stats(&mut self, k: &str, v: RobustStats) -> &mut Self {
        self.entries.push((k.to_owned(), Value::Stats(v)));
        self
    }
}

/// A full run report: titled sections plus the span-timing table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Report title (the binary/run name).
    pub title: String,
    /// Metric sections in insertion order.
    pub sections: Vec<Section>,
    /// Aggregated span timings.
    pub spans: Vec<SpanStat>,
}

impl Report {
    /// An empty report titled `title`.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_owned(),
            ..Report::default()
        }
    }

    /// The section named `name`, created at the end if absent.
    pub fn section(&mut self, name: &str) -> &mut Section {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            return &mut self.sections[i];
        }
        self.sections.push(Section {
            name: name.to_owned(),
            entries: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Attach span summaries (typically [`crate::trace::Tracer::summary`]).
    pub fn add_spans(&mut self, spans: Vec<SpanStat>) {
        self.spans.extend(spans);
    }

    /// The value at `section`/`key`, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|s| s.name == section)?
            .entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Human-readable rendering for stderr.
    pub fn render_text(&self) -> String {
        let mut s = format!("== {} metrics ==\n", self.title);
        for sec in &self.sections {
            let _ = writeln!(s, "[{}]", sec.name);
            for (k, v) in &sec.entries {
                match v {
                    Value::U64(v) => {
                        let _ = writeln!(s, "  {k:32} {v}");
                    }
                    Value::I64(v) => {
                        let _ = writeln!(s, "  {k:32} {v}");
                    }
                    Value::F64(v) => {
                        let _ = writeln!(s, "  {k:32} {v:.4}");
                    }
                    Value::Str(v) => {
                        let _ = writeln!(s, "  {k:32} {v}");
                    }
                    Value::Hist(h) => {
                        let _ = writeln!(s, "  {k:32} {}", h.render());
                    }
                    Value::Stats(st) => {
                        let _ = writeln!(
                            s,
                            "  {k:32} {:.4} ±{:.4} (n={}, min={:.4}, iqr={:.4})",
                            st.median, st.mad, st.n, st.min, st.iqr
                        );
                    }
                }
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(s, "[spans]");
            let _ = writeln!(
                s,
                "  {:40} {:>8} {:>12} {:>12}",
                "name", "count", "total_ms", "max_ms"
            );
            for sp in &self.spans {
                let _ = writeln!(
                    s,
                    "  {:40} {:>8} {:>12.3} {:>12.3}",
                    sp.name,
                    sp.count,
                    sp.total_ns as f64 / 1e6,
                    sp.max_ns as f64 / 1e6
                );
            }
        }
        s
    }

    /// Machine-readable JSON rendering (`BENCH_metrics.json`).
    ///
    /// Schema: `{"title", "sections": [{"name", "metrics": {key:
    /// value|histogram-object|stats-object}}], "spans": [{"name",
    /// "count", "total_ns", "max_ns"}]}` where a histogram value is
    /// `{"count", "sum", "min", "max", "mean", "buckets": [u64]}` and a
    /// stats value (from `--repeat N`) is `{"n", "median", "mad",
    /// "min", "max", "iqr"}`.
    pub fn to_json(&self) -> String {
        let sections: Vec<String> = self
            .sections
            .iter()
            .map(|sec| {
                let mut metrics = JsonObj::new();
                for (k, v) in &sec.entries {
                    match v {
                        Value::U64(v) => metrics.u64(k, *v),
                        Value::I64(v) => metrics.i64(k, *v),
                        Value::F64(v) => metrics.f64(k, *v),
                        Value::Str(v) => metrics.str(k, v),
                        Value::Hist(h) => {
                            let mut ho = JsonObj::new();
                            ho.u64("count", h.count)
                                .u64("sum", h.sum)
                                .u64("min", h.min)
                                .u64("max", h.max)
                                .f64("mean", h.mean())
                                .arr_u64("buckets", &h.buckets);
                            metrics.raw(k, &ho.finish())
                        }
                        Value::Stats(st) => {
                            let mut so = JsonObj::new();
                            so.u64("n", st.n)
                                .f64("median", st.median)
                                .f64("mad", st.mad)
                                .f64("min", st.min)
                                .f64("max", st.max)
                                .f64("iqr", st.iqr);
                            metrics.raw(k, &so.finish())
                        }
                    };
                }
                let mut o = JsonObj::new();
                o.str("name", &sec.name).raw("metrics", &metrics.finish());
                o.finish()
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|sp| {
                let mut o = JsonObj::new();
                o.str("name", &sp.name)
                    .u64("count", sp.count)
                    .u64("total_ns", sp.total_ns)
                    .u64("max_ns", sp.max_ns);
                o.finish()
            })
            .collect();
        let mut o = JsonObj::new();
        o.str("title", &self.title)
            .raw("sections", &json::array(&sections))
            .raw("spans", &json::array(&spans));
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_stats_from_odd_sample_count() {
        let st = RobustStats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(st.n, 3);
        assert_eq!(st.median, 2.0);
        assert_eq!(st.mad, 1.0);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 3.0);
        assert_eq!(st.iqr, 1.0);
    }

    #[test]
    fn robust_stats_interpolates_even_counts() {
        let st = RobustStats::from_samples(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(st.median, 2.5);
        // Deviations: 1.5, 0.5, 0.5, 7.5 → sorted 0.5 0.5 1.5 7.5,
        // median = (0.5 + 1.5) / 2 = 1.0.
        assert_eq!(st.mad, 1.0);
        assert!((st.iqr - 3.0).abs() < 1e-12, "iqr={}", st.iqr);
    }

    #[test]
    fn robust_stats_empty_and_single() {
        assert_eq!(RobustStats::from_samples(&[]), RobustStats::default());
        let one = RobustStats::from_samples(&[4.5]);
        assert_eq!(one.median, 4.5);
        assert_eq!(one.mad, 0.0);
        assert_eq!(one.iqr, 0.0);
    }

    #[test]
    fn stats_value_renders_json_and_text() {
        let mut r = Report::new("t");
        r.section("s")
            .stats("fsim_ms", RobustStats::from_samples(&[10.0, 11.0, 12.0]));
        let js = r.to_json();
        assert!(js.contains("\"median\""), "{js}");
        assert!(js.contains("\"mad\""), "{js}");
        let txt = r.render_text();
        assert!(txt.contains("±"), "{txt}");
        assert!(matches!(r.get("s", "fsim_ms"), Some(Value::Stats(_))));
        assert!(r.get("s", "missing").is_none());
        assert!(r.get("missing", "fsim_ms").is_none());
    }
}
