//! End-of-run report assembly: a human-readable breakdown for stderr and
//! a machine-readable JSON document (the `BENCH_metrics.json` artifact).

use crate::json::{self, JsonObj};
use crate::metrics::HistogramSnapshot;
use crate::trace::SpanStat;
use std::fmt::Write as _;

/// One metric value inside a report section.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Free-form string.
    Str(String),
    /// Histogram snapshot.
    Hist(HistogramSnapshot),
}

/// A named group of metrics (one engine or phase).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Section {
    /// Section name (e.g. `"table3.baseline.podem"`).
    pub name: String,
    /// Ordered (key, value) entries.
    pub entries: Vec<(String, Value)>,
}

impl Section {
    /// Append an unsigned integer entry.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.entries.push((k.to_owned(), Value::U64(v)));
        self
    }

    /// Append a signed integer entry.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.entries.push((k.to_owned(), Value::I64(v)));
        self
    }

    /// Append a float entry.
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.entries.push((k.to_owned(), Value::F64(v)));
        self
    }

    /// Append a string entry.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.entries.push((k.to_owned(), Value::Str(v.to_owned())));
        self
    }

    /// Append a histogram entry.
    pub fn hist(&mut self, k: &str, v: HistogramSnapshot) -> &mut Self {
        self.entries.push((k.to_owned(), Value::Hist(v)));
        self
    }
}

/// A full run report: titled sections plus the span-timing table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Report title (the binary/run name).
    pub title: String,
    /// Metric sections in insertion order.
    pub sections: Vec<Section>,
    /// Aggregated span timings.
    pub spans: Vec<SpanStat>,
}

impl Report {
    /// An empty report titled `title`.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_owned(),
            ..Report::default()
        }
    }

    /// The section named `name`, created at the end if absent.
    pub fn section(&mut self, name: &str) -> &mut Section {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            return &mut self.sections[i];
        }
        self.sections.push(Section {
            name: name.to_owned(),
            entries: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Attach span summaries (typically [`crate::trace::Tracer::summary`]).
    pub fn add_spans(&mut self, spans: Vec<SpanStat>) {
        self.spans.extend(spans);
    }

    /// Human-readable rendering for stderr.
    pub fn render_text(&self) -> String {
        let mut s = format!("== {} metrics ==\n", self.title);
        for sec in &self.sections {
            let _ = writeln!(s, "[{}]", sec.name);
            for (k, v) in &sec.entries {
                match v {
                    Value::U64(v) => {
                        let _ = writeln!(s, "  {k:32} {v}");
                    }
                    Value::I64(v) => {
                        let _ = writeln!(s, "  {k:32} {v}");
                    }
                    Value::F64(v) => {
                        let _ = writeln!(s, "  {k:32} {v:.4}");
                    }
                    Value::Str(v) => {
                        let _ = writeln!(s, "  {k:32} {v}");
                    }
                    Value::Hist(h) => {
                        let _ = writeln!(s, "  {k:32} {}", h.render());
                    }
                }
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(s, "[spans]");
            let _ = writeln!(
                s,
                "  {:40} {:>8} {:>12} {:>12}",
                "name", "count", "total_ms", "max_ms"
            );
            for sp in &self.spans {
                let _ = writeln!(
                    s,
                    "  {:40} {:>8} {:>12.3} {:>12.3}",
                    sp.name,
                    sp.count,
                    sp.total_ns as f64 / 1e6,
                    sp.max_ns as f64 / 1e6
                );
            }
        }
        s
    }

    /// Machine-readable JSON rendering (`BENCH_metrics.json`).
    ///
    /// Schema: `{"title", "sections": [{"name", "metrics": {key:
    /// value|histogram-object}}], "spans": [{"name", "count",
    /// "total_ns", "max_ns"}]}` where a histogram value is
    /// `{"count", "sum", "min", "max", "mean", "buckets": [u64]}`.
    pub fn to_json(&self) -> String {
        let sections: Vec<String> = self
            .sections
            .iter()
            .map(|sec| {
                let mut metrics = JsonObj::new();
                for (k, v) in &sec.entries {
                    match v {
                        Value::U64(v) => metrics.u64(k, *v),
                        Value::I64(v) => metrics.i64(k, *v),
                        Value::F64(v) => metrics.f64(k, *v),
                        Value::Str(v) => metrics.str(k, v),
                        Value::Hist(h) => {
                            let mut ho = JsonObj::new();
                            ho.u64("count", h.count)
                                .u64("sum", h.sum)
                                .u64("min", h.min)
                                .u64("max", h.max)
                                .f64("mean", h.mean())
                                .arr_u64("buckets", &h.buckets);
                            metrics.raw(k, &ho.finish())
                        }
                    };
                }
                let mut o = JsonObj::new();
                o.str("name", &sec.name).raw("metrics", &metrics.finish());
                o.finish()
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|sp| {
                let mut o = JsonObj::new();
                o.str("name", &sp.name)
                    .u64("count", sp.count)
                    .u64("total_ns", sp.total_ns)
                    .u64("max_ns", sp.max_ns);
                o.finish()
            })
            .collect();
        let mut o = JsonObj::new();
        o.str("title", &self.title)
            .raw("sections", &json::array(&sections))
            .raw("spans", &json::array(&spans));
        o.finish()
    }
}
