//! Integration tests for the tracer: span nesting, the JSONL sink
//! (one parseable object per line), and the report's JSON document.
//!
//! The sandbox has no serde, so validation uses a minimal recursive
//! descent JSON parser defined at the bottom of this file.

use rescue_obs::trace::Tracer;
use rescue_obs::{HistogramSnapshot, Report};

#[test]
fn disabled_tracer_records_nothing() {
    let t = Tracer::new();
    {
        let _a = t.span("outer");
        let _b = t.span("inner");
    }
    assert!(t.summary().is_empty());
    assert_eq!(t.current_depth(), 0);
}

#[test]
fn span_nesting_depths_and_summary() {
    let t = Tracer::new();
    t.set_enabled(true);
    assert_eq!(t.current_depth(), 0);
    {
        let _a = t.span("outer");
        assert_eq!(t.current_depth(), 1);
        for _ in 0..3 {
            let _b = t.span("inner");
            assert_eq!(t.current_depth(), 2);
        }
        assert_eq!(t.current_depth(), 1);
    }
    assert_eq!(t.current_depth(), 0);

    let summary = t.summary();
    assert_eq!(summary.len(), 2);
    let inner = summary.iter().find(|s| s.name == "inner").unwrap();
    let outer = summary.iter().find(|s| s.name == "outer").unwrap();
    assert_eq!(inner.count, 3);
    assert_eq!(outer.count, 1);
    // The outer span was open for at least as long as its longest child.
    assert!(outer.max_ns >= inner.max_ns);
    assert!(inner.total_ns >= inner.max_ns);
}

#[test]
fn jsonl_sink_one_object_per_line() {
    let path = std::env::temp_dir().join(format!("rescue_obs_trace_{}.jsonl", std::process::id()));
    let path_s = path.to_str().unwrap();

    let t = Tracer::new();
    t.set_sink_path(path_s).unwrap();
    {
        let _a = t.span("phase.one");
        let _b = t.span("phase.\"two\"\n"); // name needing escapes
        t.event("checkpoint", &[("k", "v"), ("newline", "a\nb")]);
    }
    t.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "event + two spans: {text:?}");
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        let obj = match v {
            json::Value::Object(o) => o,
            other => panic!("line is not an object: {other:?}"),
        };
        let ty = obj.iter().find(|(k, _)| k == "type").expect("type field");
        match &ty.1 {
            json::Value::Str(s) if s == "span" => {
                for field in ["name", "ts_ns", "dur_ns", "depth"] {
                    assert!(obj.iter().any(|(k, _)| k == field), "missing {field}");
                }
            }
            json::Value::Str(s) if s == "event" => {
                assert!(obj.iter().any(|(k, _)| k == "newline"));
            }
            other => panic!("unexpected type {other:?}"),
        }
    }
    // Spans close inner-first, so line 2 (after the event) is the inner
    // span at depth 1 and line 3 the outer at depth 0.
    let depth_of = |line: &str| match json::parse(line).unwrap() {
        json::Value::Object(o) => o
            .into_iter()
            .find(|(k, _)| k == "depth")
            .map(|(_, v)| v)
            .unwrap(),
        _ => unreachable!(),
    };
    assert_eq!(depth_of(lines[1]), json::Value::Num(1.0));
    assert_eq!(depth_of(lines[2]), json::Value::Num(0.0));
}

#[test]
fn report_json_is_parseable() {
    let mut r = Report::new("test \"quoted\"");
    let mut h = HistogramSnapshot::default();
    h.record(3);
    h.record(300);
    r.section("sec.a")
        .u64("u", 7)
        .i64("i", -7)
        .f64("f", 0.25)
        .f64("nan", f64::NAN)
        .str("s", "x\ny")
        .hist("h", h);
    let t = Tracer::new();
    t.set_enabled(true);
    {
        let _s = t.span("p");
    }
    r.add_spans(t.summary());

    let doc = r.to_json();
    let v = json::parse(&doc).unwrap_or_else(|e| panic!("bad report json: {e}\n{doc}"));
    let obj = match v {
        json::Value::Object(o) => o,
        _ => panic!("not an object"),
    };
    for field in ["title", "sections", "spans"] {
        assert!(obj.iter().any(|(k, _)| k == field), "missing {field}");
    }
    // NaN must serialize as null, not poison the document.
    assert!(doc.contains("\"nan\":null"));
}

/// Minimal JSON parser for validation: values, objects with duplicate
/// keys kept in order, numbers as f64.
mod json {
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end".into()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at {i}"));
        }
        *i += 1;
        let mut out = Vec::new();
        while let Some(&c) = b.get(*i) {
            *i += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                b'\\' => {
                    let esc = *b.get(*i).ok_or("bad escape")?;
                    *i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = std::str::from_utf8(b.get(*i..*i + 4).ok_or("short \\u")?)
                                .map_err(|e| e.to_string())?;
                            *i += 4;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            let ch = char::from_u32(cp).ok_or("bad codepoint")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // [
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected , or ] at {i}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // {
        let mut fields = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, i);
            let k = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected : at {i}"));
            }
            *i += 1;
            fields.push((k, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected , or }} at {i}")),
            }
        }
    }
}
