//! Crash-resilience tests for the trace JSONL sink: a run that dies
//! mid-span must still leave a parseable trace file. Kept in its own
//! integration binary because one test attaches a sink (and a panic
//! hook) to the process-global tracer.

use rescue_obs::{json, Tracer};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rescue-trace-{tag}-{}.jsonl", std::process::id()))
}

fn parse_lines(path: &PathBuf) -> Vec<json::JsonValue> {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    text.lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}")))
        .collect()
}

#[test]
fn dropping_a_tracer_flushes_its_sink() {
    let path = temp_path("drop");
    {
        let t = Tracer::new();
        t.set_sink_path(path.to_str().unwrap()).expect("sink");
        // Fewer events than the periodic-flush threshold: only the drop
        // flush can get these to disk.
        t.event("begin", &[("k", "v")]);
        t.counter("c", 1.5);
        let _s = t.span("work");
    }
    let lines = parse_lines(&path);
    assert_eq!(lines.len(), 3);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn periodic_flush_yields_parseable_prefix_without_any_explicit_flush() {
    let path = temp_path("periodic");
    let t = Tracer::new();
    t.set_sink_path(path.to_str().unwrap()).expect("sink");
    for i in 0..100 {
        t.event("tick", &[("i", &i.to_string())]);
    }
    // No flush, no drop: the every-32-lines policy must have pushed at
    // least 96 complete lines to disk already.
    let lines = parse_lines(&path);
    assert!(lines.len() >= 96, "only {} lines flushed", lines.len());
    drop(t);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killing_a_run_mid_span_leaves_parseable_jsonl() {
    let path = temp_path("panic");
    let tracer = rescue_obs::trace::global();
    tracer.set_sink_path(path.to_str().unwrap()).expect("sink");
    // Quiet the default "thread panicked" stderr noise while keeping
    // the flush hook (which chains whatever hook is current) active.
    let result = std::thread::Builder::new()
        .name("doomed".to_owned())
        .spawn(|| {
            let t = rescue_obs::trace::global();
            for i in 0..5 {
                t.event("progress", &[("i", &i.to_string())]);
            }
            let _mid = t.span("never.closed");
            panic!("simulated mid-run crash");
        })
        .expect("spawn")
        .join();
    assert!(result.is_err(), "the doomed thread must panic");
    // The panic hook flushed the buffered lines; every line on disk is
    // complete JSON even though the run died inside an open span.
    let lines = parse_lines(&path);
    assert!(
        lines.len() >= 5,
        "only {} lines survived the crash",
        lines.len()
    );
    let has_progress = lines
        .iter()
        .any(|v| matches!(v.get("name"), Some(json::JsonValue::Str(s)) if s == "progress"));
    assert!(has_progress, "progress events missing from crash trace");
    let _ = std::fs::remove_file(&path);
}
