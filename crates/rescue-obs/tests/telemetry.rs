//! Integration tests for the live-telemetry surface: ring wraparound,
//! concurrent-writer exactness, the Prometheus exposition golden, and
//! the HTTP server end-to-end (on an ephemeral port).

use rescue_obs::live::{LiveCounter, LiveCounterSnap, LiveSnapshot, ProgressRing};
use rescue_obs::metrics::Registry;
use rescue_obs::{json, prometheus, server, TelemetryServer};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

#[test]
fn ring_wraparound_keeps_newest_samples_and_exact_totals() {
    let ring = ProgressRing::new(4);
    for i in 1..=10u64 {
        ring.record(LiveCounter::FsimGateEvals, i, i * 100);
    }
    // Totals cover all ten records, not just the surviving samples.
    assert_eq!(
        ring.total(LiveCounter::FsimGateEvals),
        (1..=10).sum::<u64>()
    );
    assert_eq!(ring.recorded(), 10);
    let mut samples = ring.recent();
    assert_eq!(samples.len(), 4);
    samples.sort_by_key(|s| s.ts_ns);
    // Capacity overflow overwrote the oldest six; the newest four remain.
    assert_eq!(
        samples.iter().map(|s| s.ts_ns).collect::<Vec<_>>(),
        vec![700, 800, 900, 1000]
    );
    assert_eq!(
        samples.iter().map(|s| s.delta).collect::<Vec<_>>(),
        vec![7, 8, 9, 10]
    );
}

#[test]
fn totals_stay_exact_under_eight_writer_threads() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 10_000;
    let ring = ProgressRing::new(64);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = &ring;
            scope.spawn(move || {
                let counter = if w % 2 == 0 {
                    LiveCounter::FsimGateEvals
                } else {
                    LiveCounter::FuzzCases
                };
                for i in 0..PER_WRITER {
                    ring.record(counter, 3, w as u64 * PER_WRITER + i);
                }
            });
        }
    });
    // The ring wrapped thousands of times and writers raced on slots,
    // but the totals path is a plain fetch_add: exact.
    let expected = (WRITERS as u64 / 2) * PER_WRITER * 3;
    assert_eq!(ring.total(LiveCounter::FsimGateEvals), expected);
    assert_eq!(ring.total(LiveCounter::FuzzCases), expected);
    assert_eq!(ring.recorded(), WRITERS as u64 * PER_WRITER);
    assert_eq!(ring.recent().len(), 64);
}

#[test]
fn prometheus_exposition_golden() {
    let live = LiveSnapshot {
        uptime_ns: 2_500_000_000,
        counters: vec![LiveCounterSnap {
            name: "atpg.vectors",
            total: 7,
            rate_per_sec: 3.5,
            last_ts_ns: 2_400_000_000,
        }],
    };
    let reg = Registry::new();
    reg.counter("podem.backtracks").add(42);
    reg.gauge("queue.depth").set(-3);
    let hist = reg.histogram("fault.weight");
    for v in [0u64, 1, 1000] {
        hist.record(v);
    }
    let got = prometheus::render(&live, &reg.snapshot());
    let want = "\
# HELP rescue_uptime_seconds Seconds since telemetry started.
# TYPE rescue_uptime_seconds gauge
rescue_uptime_seconds 2.5
# HELP rescue_live_atpg_vectors_total Capture vectors committed by ATPG.
# TYPE rescue_live_atpg_vectors_total counter
rescue_live_atpg_vectors_total 7
# HELP rescue_live_atpg_vectors_per_sec Recent-window rate of the matching live counter.
# TYPE rescue_live_atpg_vectors_per_sec gauge
rescue_live_atpg_vectors_per_sec 3.5
# HELP rescue_podem_backtracks_total Registry counter.
# TYPE rescue_podem_backtracks_total counter
rescue_podem_backtracks_total 42
# HELP rescue_queue_depth Registry gauge.
# TYPE rescue_queue_depth gauge
rescue_queue_depth -3
# HELP rescue_fault_weight Log2-bucket histogram.
# TYPE rescue_fault_weight histogram
rescue_fault_weight_bucket{le=\"1\"} 1
rescue_fault_weight_bucket{le=\"2\"} 2
rescue_fault_weight_bucket{le=\"1024\"} 3
rescue_fault_weight_bucket{le=\"+Inf\"} 3
rescue_fault_weight_sum 1001
rescue_fault_weight_count 3
";
    assert_eq!(got, want);
}

/// Minimal Prometheus text-exposition validity check: every line is a
/// comment or `name{labels} value`, every sample's family has HELP and
/// TYPE lines, names are legal, histogram buckets are cumulative.
fn assert_valid_exposition(text: &str) {
    use std::collections::BTreeSet;
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    assert!(!text.is_empty());
    assert!(text.ends_with('\n'), "exposition must end with newline");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split(' ').next().unwrap().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            typed.insert(it.next().unwrap().to_owned());
            let kind = it.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            continue;
        }
        // Sample line: name or name{labels}, one space, a number.
        let (name_part, value) = line.rsplit_once(' ').expect(line);
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line}"
        );
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "bad value in {line}"
        );
        // Histogram series attach to the base family's HELP/TYPE.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        assert!(helped.contains(family), "no HELP for {name}");
        assert!(typed.contains(family), "no TYPE for {name}");
    }
}

#[test]
fn golden_exposition_passes_the_validity_checker() {
    let live = LiveSnapshot::default();
    let reg = Registry::new();
    reg.counter("a").inc();
    reg.histogram("h").record(5);
    assert_valid_exposition(&prometheus::render(&live, &reg.snapshot()));
}

fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (head.to_owned(), body.to_owned())
}

#[test]
fn server_serves_metrics_snapshot_and_healthz() {
    let mut server = TelemetryServer::start("127.0.0.1:0", "telemetry-test").expect("bind");
    let addr = server.addr();
    rescue_obs::metrics::global()
        .counter("server.test.hits")
        .add(5);
    rescue_obs::live::global().record(LiveCounter::LintFindings, 2);

    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    assert_valid_exposition(&body);
    assert!(body.contains("rescue_server_test_hits_total 5"), "{body}");
    assert!(body.contains("rescue_live_lint_findings_total"), "{body}");

    let (head, body) = http_get(addr, "/snapshot.json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let doc = json::parse(&body).expect("snapshot.json parses");
    let obj = match doc {
        json::JsonValue::Obj(o) => o,
        other => panic!("expected object, got {other:?}"),
    };
    assert!(obj.iter().any(|(k, _)| k == "live"));
    assert!(obj.iter().any(|(k, _)| k == "registry"));

    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.shutdown();
    // After shutdown the port stops accepting (or resets immediately).
    assert!(
        TcpStream::connect(addr).is_err() || http_get_safe(addr, "/healthz").is_none(),
        "server still serving after shutdown"
    );
}

fn http_get_safe(addr: SocketAddr, target: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    if response.is_empty() {
        None
    } else {
        Some(response)
    }
}

#[test]
fn snapshot_json_is_deterministic_and_sorted() {
    let live = LiveSnapshot::default();
    let reg = Registry::new();
    reg.counter("zzz").inc();
    reg.counter("aaa").inc();
    let a = server::snapshot_json("t", &live, &reg.snapshot());
    let b = server::snapshot_json("t", &live, &reg.snapshot());
    assert_eq!(a, b);
    let aaa = a.find("\"aaa\"").expect("aaa present");
    let zzz = a.find("\"zzz\"").expect("zzz present");
    assert!(aaa < zzz, "registry counters not sorted in {a}");
}
