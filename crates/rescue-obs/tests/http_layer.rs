//! End-to-end tests for the reusable HTTP layer and the telemetry
//! server's routing corner cases: query-string and malformed-target
//! normalization, `HEAD` support, empty-connection handling, oversized
//! request lines, and a slow client stalling while a fast scraper
//! completes.

use rescue_obs::http::{write_response, HttpOptions, HttpServer, Request, Response};
use rescue_obs::TelemetryServer;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn get(addr: SocketAddr, target: &str) -> String {
    send_raw(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn echo_server() -> HttpServer {
    HttpServer::start(
        "127.0.0.1:0",
        "http-test",
        HttpOptions::default(),
        |req: Request, stream: &mut TcpStream| {
            let head_only = req.is_head();
            let body = format!(
                "method={} path={} query={}\n",
                req.method, req.path, req.query
            );
            write_response(stream, &Response::ok("text/plain", body), head_only)
        },
    )
    .expect("bind")
}

#[test]
fn query_string_is_stripped_before_routing() {
    let server = echo_server();
    let resp = get(server.addr(), "/metrics?x=1&y=2");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("path=/metrics query=x=1&y=2"), "{resp}");
}

#[test]
fn well_formed_target_keeps_http_substring_in_query() {
    let server = echo_server();
    // With a separate version token on the request line, an `HTTP/`
    // substring in the query is data, not a glued version fragment.
    let resp = get(server.addr(), "/metrics?proto=HTTP/2");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("path=/metrics query=proto=HTTP/2"), "{resp}");
    // Without a version token, the glued trailing fragment is stripped
    // from whichever half carries it.
    let resp = send_raw(server.addr(), b"GET /metrics?x=1HTTP/1.1\r\n\r\n");
    assert!(resp.contains("path=/metrics query=x=1\n"), "{resp}");
}

#[test]
fn telemetry_metrics_with_query_string_is_200() {
    let mut server = TelemetryServer::start("127.0.0.1:0", "q-test").expect("bind");
    let resp = get(server.addr(), "/metrics?x=1");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    // A glued HTTP/ fragment on a malformed request line still routes.
    let resp = send_raw(server.addr(), b"GET /metricsHTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    server.shutdown();
}

#[test]
fn head_request_is_answered_headers_only() {
    let mut server = TelemetryServer::start("127.0.0.1:0", "head-test").expect("bind");
    let resp = send_raw(
        server.addr(),
        b"HEAD /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let (head, body) = resp.split_once("\r\n\r\n").expect("terminator");
    assert!(body.is_empty(), "HEAD must not carry a body: {body:?}");
    // Content-Length reflects what GET would have returned ("ok\n").
    assert!(head.contains("Content-Length: 3"), "{head}");
    server.shutdown();
}

#[test]
fn client_closing_without_a_request_gets_no_response() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Close the write half without sending anything; the server must
    // close without writing (no 405/400 bytes).
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    assert!(response.is_empty(), "got {response:?}");
}

#[test]
fn oversized_request_line_is_rejected_with_431() {
    let server = echo_server();
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(20_000));
    let resp = send_raw(server.addr(), long.as_bytes());
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let server = echo_server();
    let resp = send_raw(
        server.addr(),
        b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
}

#[test]
fn post_body_is_read_per_content_length() {
    let server = HttpServer::start(
        "127.0.0.1:0",
        "post-test",
        HttpOptions {
            max_body: 1024,
            ..HttpOptions::default()
        },
        |req: Request, stream: &mut TcpStream| {
            let body = String::from_utf8_lossy(&req.body).into_owned();
            write_response(stream, &Response::ok("text/plain", body), false)
        },
    )
    .expect("bind");
    let resp = send_raw(
        server.addr(),
        b"POST /jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world",
    );
    let (_, body) = resp.split_once("\r\n\r\n").expect("terminator");
    assert_eq!(body, "hello world");
}

#[test]
fn slow_client_does_not_block_a_fast_scraper() {
    let mut server = TelemetryServer::start("127.0.0.1:0", "slow-test").expect("bind");
    let addr = server.addr();
    // A client that connects and stalls (sends nothing). Under the old
    // inline accept loop this held the server for the full 2s read
    // timeout; with per-connection threads the scrape below must finish
    // long before that.
    let stall = TcpStream::connect(addr).expect("connect slow");
    let start = Instant::now();
    let resp = get(addr, "/healthz");
    let elapsed = start.elapsed();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(
        elapsed < Duration::from_millis(1500),
        "fast scrape took {elapsed:?} while a slow client stalled"
    );
    drop(stall);
    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_503() {
    let server = HttpServer::start(
        "127.0.0.1:0",
        "cap-test",
        HttpOptions {
            max_connections: 1,
            read_timeout: Duration::from_secs(5),
            ..HttpOptions::default()
        },
        |_req: Request, stream: &mut TcpStream| {
            write_response(stream, &Response::ok("text/plain", "done\n".into()), false)
        },
    )
    .expect("bind");
    let addr = server.addr();
    // Occupy the single slot with a stalling connection, wait until the
    // server has admitted it, then expect the next connection to shed.
    let _stall = TcpStream::connect(addr).expect("connect stall");
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.active_connections() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 1, "stall not admitted");
    let resp = get(addr, "/");
    assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
}

#[test]
fn non_get_method_on_telemetry_is_405() {
    let mut server = TelemetryServer::start("127.0.0.1:0", "method-test").expect("bind");
    let resp = send_raw(
        server.addr(),
        b"DELETE /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    server.shutdown();
}
