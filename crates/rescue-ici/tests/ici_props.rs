//! Property-based tests for the ICI analysis and transformations.

use proptest::prelude::*;
use rescue_ici::{EdgeId, EdgeKind, LcGraph, LcId};

/// Build a random LC graph from edge picks.
fn random_graph(n_nodes: usize, edges: &[(u16, u16, bool)]) -> LcGraph {
    let mut g = LcGraph::new();
    let ids: Vec<LcId> = (0..n_nodes)
        .map(|i| g.add_component(&format!("c{i}"), 1.0))
        .collect();
    for &(a, b, comb) in edges {
        let from = ids[a as usize % n_nodes];
        let to = ids[b as usize % n_nodes];
        if from == to {
            continue;
        }
        g.add_edge(
            from,
            to,
            if comb {
                EdgeKind::Combinational
            } else {
                EdgeKind::Latched
            },
        );
    }
    g
}

proptest! {
    /// Super-components partition the node set.
    #[test]
    fn super_components_partition(
        n in 2usize..12,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 0..40),
    ) {
        let g = random_graph(n, &edges);
        let sc = g.super_components();
        let mut seen = vec![false; n];
        for group in &sc {
            for c in group {
                prop_assert!(!seen[c.index()], "node in two super-components");
                seen[c.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s), "node missing from partition");
    }

    /// Splitting every combinational edge always yields full isolation
    /// (one super-component per node) — cycle splitting is universal.
    #[test]
    fn full_cycle_split_isolates_everything(
        n in 2usize..12,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 0..40),
    ) {
        let mut g = random_graph(n, &edges);
        let comb: Vec<EdgeId> = g
            .edges()
            .filter(|e| e.kind.is_combinational())
            .map(|e| e.id)
            .collect();
        g.cycle_split(&comb);
        prop_assert_eq!(g.super_components().len(), g.num_components());
    }

    /// Cycle splitting is monotone: it never merges super-components.
    #[test]
    fn cycle_split_never_merges(
        n in 2usize..10,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 1..30),
        cut_picks in proptest::collection::vec(any::<u16>(), 1..8),
    ) {
        let mut g = random_graph(n, &edges);
        prop_assume!(g.num_edges() > 0);
        let before = g.super_components().len();
        let all_edges: Vec<EdgeId> = g.edges().map(|e| e.id).collect();
        let cut: Vec<EdgeId> = cut_picks
            .iter()
            .map(|&p| all_edges[p as usize % all_edges.len()])
            .collect();
        g.cycle_split(&cut);
        prop_assert!(g.super_components().len() >= before);
    }

    /// Privatization with one group per reader fully separates the
    /// readers (they stop sharing the privatized component), and the
    /// total area grows by exactly (copies × area).
    #[test]
    fn full_privatization_separates_readers(
        n in 3usize..10,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 1..30),
        target_pick in any::<u16>(),
    ) {
        let mut g = random_graph(n, &edges);
        let target = LcId::from_index(target_pick as usize % g.num_components());
        let readers = g.combinational_readers(target);
        prop_assume!(readers.len() >= 2);
        // Readers must not read each other through the target's other
        // paths for clean separation; we only check the area invariant
        // and that the call succeeds with per-reader groups.
        let groups: Vec<Vec<LcId>> = readers.iter().map(|&r| vec![r]).collect();
        let area_before = g.total_area();
        let step = g.privatize(target, &groups).expect("full privatization is valid");
        let extra = match step {
            rescue_ici::TransformStep::Privatize { extra_area, copies, .. } => {
                prop_assert_eq!(copies.len(), readers.len() - 1);
                extra_area
            }
            other => {
                prop_assert!(false, "unexpected step {:?}", other);
                unreachable!()
            }
        };
        prop_assert!((g.total_area() - area_before - extra).abs() < 1e-9);
        // The target now has exactly one combinational reader per copy.
        prop_assert_eq!(g.combinational_readers(target).len(), 1);
    }

    /// Rotation preserves node count and total area (it only retags
    /// edges), and applying it twice returns the original edge kinds when
    /// the pivot's edge sets are disjoint.
    #[test]
    fn rotation_preserves_structure(
        n in 2usize..10,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 1..30),
        pivot_pick in any::<u16>(),
    ) {
        let mut g = random_graph(n, &edges);
        let pivot = LcId::from_index(pivot_pick as usize % g.num_components());
        let nodes_before = g.num_components();
        let area_before = g.total_area();
        let edges_before = g.num_edges();
        if g.rotate_dependence(pivot).is_ok() {
            prop_assert_eq!(g.num_components(), nodes_before);
            prop_assert_eq!(g.num_edges(), edges_before);
            prop_assert!((g.total_area() - area_before).abs() < 1e-12);
        }
    }
}

/// The paper's §3.2.2 partial-privatization example: LCC..LCF all read
/// LCA; full privatization would need 3 copies (4 super-components),
/// partial privatization with one copy (LCB) yields 2 super-components
/// of two readers each.
#[test]
fn partial_privatization_matches_paper_example() {
    let mut g = LcGraph::new();
    let lca = g.add_component("LCA", 2.0);
    let readers: Vec<LcId> = ["LCC", "LCD", "LCE", "LCF"]
        .iter()
        .map(|n| g.add_component(n, 1.0))
        .collect();
    for &r in &readers {
        g.add_edge(lca, r, EdgeKind::Combinational);
    }
    assert_eq!(g.super_components().len(), 1);

    // Partial: two groups of two readers -> one copy (LCB).
    let mut partial = g.clone();
    let step = partial
        .privatize(lca, &[vec![readers[0], readers[1]], vec![readers[2], readers[3]]])
        .unwrap();
    let (copies, extra) = match step {
        rescue_ici::TransformStep::Privatize { copies, extra_area, .. } => (copies, extra_area),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(copies.len(), 1, "partial privatization creates one copy");
    assert_eq!(extra, 2.0, "one copy of LCA's area");
    assert_eq!(partial.super_components().len(), 2);

    // Full: one group per reader -> three copies, four super-components.
    let mut full = g.clone();
    let step = full
        .privatize(lca, &readers.iter().map(|&r| vec![r]).collect::<Vec<_>>())
        .unwrap();
    if let rescue_ici::TransformStep::Privatize { copies, extra_area, .. } = step {
        assert_eq!(copies.len(), 3);
        assert_eq!(extra_area, 6.0);
    }
    assert_eq!(full.super_components().len(), 4);
    // Partial trades isolation grain for area: half the copies of full.
    assert!(partial.total_area() < full.total_area());
}
