//! Property-based tests for the ICI analysis and transformations,
//! driven by a seeded [`SplitMix64`] case generator.

use rescue_ici::{EdgeId, EdgeKind, LcGraph, LcId};
use rescue_obs::SplitMix64;

/// Random edge picks in the shape `random_graph` consumes.
fn random_edges(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<(u16, u16, bool)> {
    let len = lo + rng.below(hi - lo);
    (0..len)
        .map(|_| {
            (
                rng.next_u64() as u16,
                rng.next_u64() as u16,
                rng.next_bool(),
            )
        })
        .collect()
}

/// Build a random LC graph from edge picks.
fn random_graph(n_nodes: usize, edges: &[(u16, u16, bool)]) -> LcGraph {
    let mut g = LcGraph::new();
    let ids: Vec<LcId> = (0..n_nodes)
        .map(|i| g.add_component(&format!("c{i}"), 1.0))
        .collect();
    for &(a, b, comb) in edges {
        let from = ids[a as usize % n_nodes];
        let to = ids[b as usize % n_nodes];
        if from == to {
            continue;
        }
        g.add_edge(
            from,
            to,
            if comb {
                EdgeKind::Combinational
            } else {
                EdgeKind::Latched
            },
        );
    }
    g
}

/// Super-components partition the node set.
#[test]
fn super_components_partition() {
    let mut rng = SplitMix64::new(0x1c1_0001);
    for _ in 0..128 {
        let n = 2 + rng.below(10);
        let edges = random_edges(&mut rng, 0, 40);
        let g = random_graph(n, &edges);
        let sc = g.super_components();
        let mut seen = vec![false; n];
        for group in &sc {
            for c in group {
                assert!(!seen[c.index()], "node in two super-components");
                seen[c.index()] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s), "node missing from partition");
    }
}

/// Splitting every combinational edge always yields full isolation
/// (one super-component per node) — cycle splitting is universal.
#[test]
fn full_cycle_split_isolates_everything() {
    let mut rng = SplitMix64::new(0x1c1_0002);
    for _ in 0..128 {
        let n = 2 + rng.below(10);
        let edges = random_edges(&mut rng, 0, 40);
        let mut g = random_graph(n, &edges);
        let comb: Vec<EdgeId> = g
            .edges()
            .filter(|e| e.kind.is_combinational())
            .map(|e| e.id)
            .collect();
        g.cycle_split(&comb);
        assert_eq!(g.super_components().len(), g.num_components());
    }
}

/// Cycle splitting is monotone: it never merges super-components.
#[test]
fn cycle_split_never_merges() {
    let mut rng = SplitMix64::new(0x1c1_0003);
    for _ in 0..128 {
        let n = 2 + rng.below(8);
        let edges = random_edges(&mut rng, 1, 30);
        let mut g = random_graph(n, &edges);
        if g.num_edges() == 0 {
            continue;
        }
        let before = g.super_components().len();
        let all_edges: Vec<EdgeId> = g.edges().map(|e| e.id).collect();
        let n_cut = 1 + rng.below(7);
        let cut: Vec<EdgeId> = (0..n_cut)
            .map(|_| all_edges[rng.below(all_edges.len())])
            .collect();
        g.cycle_split(&cut);
        assert!(g.super_components().len() >= before);
    }
}

/// Privatization with one group per reader fully separates the readers
/// (they stop sharing the privatized component), and the total area
/// grows by exactly (copies × area).
#[test]
fn full_privatization_separates_readers() {
    let mut rng = SplitMix64::new(0x1c1_0004);
    for _ in 0..128 {
        let n = 3 + rng.below(7);
        let edges = random_edges(&mut rng, 1, 30);
        let mut g = random_graph(n, &edges);
        let target = LcId::from_index(rng.below(g.num_components()));
        let readers = g.combinational_readers(target);
        if readers.len() < 2 {
            continue;
        }
        // Readers must not read each other through the target's other
        // paths for clean separation; we only check the area invariant
        // and that the call succeeds with per-reader groups.
        let groups: Vec<Vec<LcId>> = readers.iter().map(|&r| vec![r]).collect();
        let area_before = g.total_area();
        let step = g
            .privatize(target, &groups)
            .expect("full privatization is valid");
        let extra = match step {
            rescue_ici::TransformStep::Privatize {
                extra_area, copies, ..
            } => {
                assert_eq!(copies.len(), readers.len() - 1);
                extra_area
            }
            other => panic!("unexpected step {other:?}"),
        };
        assert!((g.total_area() - area_before - extra).abs() < 1e-9);
        // The target now has exactly one combinational reader per copy.
        assert_eq!(g.combinational_readers(target).len(), 1);
    }
}

/// Rotation preserves node count and total area (it only retags edges).
#[test]
fn rotation_preserves_structure() {
    let mut rng = SplitMix64::new(0x1c1_0005);
    for _ in 0..128 {
        let n = 2 + rng.below(8);
        let edges = random_edges(&mut rng, 1, 30);
        let mut g = random_graph(n, &edges);
        let pivot = LcId::from_index(rng.below(g.num_components()));
        let nodes_before = g.num_components();
        let area_before = g.total_area();
        let edges_before = g.num_edges();
        if g.rotate_dependence(pivot).is_ok() {
            assert_eq!(g.num_components(), nodes_before);
            assert_eq!(g.num_edges(), edges_before);
            assert!((g.total_area() - area_before).abs() < 1e-12);
        }
    }
}

/// The paper's §3.2.2 partial-privatization example: LCC..LCF all read
/// LCA; full privatization would need 3 copies (4 super-components),
/// partial privatization with one copy (LCB) yields 2 super-components
/// of two readers each.
#[test]
fn partial_privatization_matches_paper_example() {
    let mut g = LcGraph::new();
    let lca = g.add_component("LCA", 2.0);
    let readers: Vec<LcId> = ["LCC", "LCD", "LCE", "LCF"]
        .iter()
        .map(|n| g.add_component(n, 1.0))
        .collect();
    for &r in &readers {
        g.add_edge(lca, r, EdgeKind::Combinational);
    }
    assert_eq!(g.super_components().len(), 1);

    // Partial: two groups of two readers -> one copy (LCB).
    let mut partial = g.clone();
    let step = partial
        .privatize(
            lca,
            &[vec![readers[0], readers[1]], vec![readers[2], readers[3]]],
        )
        .unwrap();
    let (copies, extra) = match step {
        rescue_ici::TransformStep::Privatize {
            copies, extra_area, ..
        } => (copies, extra_area),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(copies.len(), 1, "partial privatization creates one copy");
    assert_eq!(extra, 2.0, "one copy of LCA's area");
    assert_eq!(partial.super_components().len(), 2);

    // Full: one group per reader -> three copies, four super-components.
    let mut full = g.clone();
    let step = full
        .privatize(lca, &readers.iter().map(|&r| vec![r]).collect::<Vec<_>>())
        .unwrap();
    if let rescue_ici::TransformStep::Privatize {
        copies, extra_area, ..
    } = step
    {
        assert_eq!(copies.len(), 3);
        assert_eq!(extra_area, 6.0);
    }
    assert_eq!(full.super_components().len(), 4);
    // Partial trades isolation grain for area: half the copies of full.
    assert!(partial.total_area() < full.total_area());
}
