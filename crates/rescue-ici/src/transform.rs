//! The three ICI transformations of paper Section 3.2, as graph rewrites.

use crate::graph::{EdgeId, EdgeKind, LcGraph, LcId, LcNode};
use std::error::Error;
use std::fmt;

/// One applied transformation, for audit trails and cost accounting.
#[derive(Clone, Debug, PartialEq)]
pub enum TransformStep {
    /// Combinational edges were latched; paths through them now take one
    /// extra cycle.
    CycleSplit {
        /// The retagged edges.
        edges: Vec<EdgeId>,
    },
    /// A component was replicated so reader groups see private copies.
    Privatize {
        /// The component that was copied.
        original: LcId,
        /// The new copies (one per reader group beyond the first).
        copies: Vec<LcId>,
        /// Extra area added, in the graph's area units.
        extra_area: f64,
    },
    /// The pipeline latch was rotated around a component in a
    /// single-stage loop.
    Rotate {
        /// The component the latch was rotated around.
        pivot: LcId,
    },
}

/// Accumulated record of transformations applied to a graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransformLog {
    /// Steps in application order.
    pub steps: Vec<TransformStep>,
}

impl TransformLog {
    /// Total latency cost in cycles: each cycle-split step adds one cycle
    /// to paths crossing its cut.
    pub fn added_latency(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TransformStep::CycleSplit { .. }))
            .count()
    }

    /// Total area added by privatization.
    pub fn added_area(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match s {
                TransformStep::Privatize { extra_area, .. } => *extra_area,
                _ => 0.0,
            })
            .sum()
    }
}

/// Error from [`LcGraph::privatize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrivatizeError {
    /// A listed reader has no combinational edge from the component.
    NotAReader {
        /// The component being privatized.
        component: LcId,
        /// The offending group member.
        reader: LcId,
    },
    /// The reader groups do not cover every combinational reader.
    UncoveredReader(LcId),
    /// Fewer than two groups: privatization would be a no-op.
    TooFewGroups,
}

impl fmt::Display for PrivatizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivatizeError::NotAReader { component, reader } => {
                write!(f, "{reader} does not combinationally read {component}")
            }
            PrivatizeError::UncoveredReader(r) => {
                write!(f, "combinational reader {r} not covered by any group")
            }
            PrivatizeError::TooFewGroups => {
                write!(f, "privatization needs at least two reader groups")
            }
        }
    }
}

impl Error for PrivatizeError {}

/// Error from [`LcGraph::rotate_dependence`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RotateError {
    /// The pivot has a combinational in-edge and a latched in-edge from the
    /// same side, so rotation would create a half-latched path.
    MixedInEdges(LcId),
    /// The pivot has no latched out-edge to swap; rotation is meaningless.
    NoLatchedOutput(LcId),
}

impl fmt::Display for RotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotateError::MixedInEdges(c) => {
                write!(f, "component {c} mixes latched and combinational inputs")
            }
            RotateError::NoLatchedOutput(c) => {
                write!(f, "component {c} has no latched output to rotate")
            }
        }
    }
}

impl Error for RotateError {}

impl LcGraph {
    /// **Cycle splitting** (paper §3.2.1): retag the given combinational
    /// edges as latched, modeling the insertion of a pipeline latch on the
    /// cut. Data crossing the cut now arrives a cycle later; the clock
    /// period is unchanged.
    ///
    /// Edges already latched are left untouched (idempotent).
    pub fn cycle_split(&mut self, edges: &[EdgeId]) -> TransformStep {
        let mut changed = Vec::new();
        for &e in edges {
            let edge = &mut self.edges[e.index()];
            if edge.kind.is_combinational() {
                edge.kind = EdgeKind::Latched;
                changed.push(e);
            }
        }
        TransformStep::CycleSplit { edges: changed }
    }

    /// **Logic privatization** (paper §3.2.2): replicate component `c` so
    /// that each group of combinational readers gets its own copy. With
    /// one group per reader this is full privatization; with coarser
    /// groups it is the paper's *partial* privatization (less area, larger
    /// super-components).
    ///
    /// The first group keeps the original; each further group gets a copy
    /// that inherits all of `c`'s in-edges. Reader edges are rewired to
    /// the group's copy. The copies' names get `#k` suffixes.
    ///
    /// # Errors
    ///
    /// See [`PrivatizeError`]. The groups must exactly cover the
    /// combinational readers of `c`.
    pub fn privatize(
        &mut self,
        c: LcId,
        reader_groups: &[Vec<LcId>],
    ) -> Result<TransformStep, PrivatizeError> {
        if reader_groups.len() < 2 {
            return Err(PrivatizeError::TooFewGroups);
        }
        let readers = self.combinational_readers(c);
        for g in reader_groups {
            for &r in g {
                if !readers.contains(&r) {
                    return Err(PrivatizeError::NotAReader {
                        component: c,
                        reader: r,
                    });
                }
            }
        }
        for &r in &readers {
            if !reader_groups.iter().any(|g| g.contains(&r)) {
                return Err(PrivatizeError::UncoveredReader(r));
            }
        }

        let in_edges: Vec<(LcId, EdgeKind)> = self.edges_to(c).map(|e| (e.from, e.kind)).collect();
        let base = self.nodes[c.index()].clone();
        let mut copies = Vec::new();
        let mut extra_area = 0.0;
        for (k, group) in reader_groups.iter().enumerate().skip(1) {
            let copy = LcId(self.nodes.len() as u32);
            self.nodes.push(LcNode {
                name: format!("{}#{}", base.name, k),
                area: base.area,
                copy_of: Some(c),
            });
            extra_area += base.area;
            for &(from, kind) in &in_edges {
                self.add_edge(from, copy, kind);
            }
            // Rewire this group's reader edges from the original to the copy.
            for e in 0..self.edges.len() {
                let edge = &mut self.edges[e];
                if edge.from == c && edge.kind.is_combinational() && group.contains(&edge.to) {
                    edge.from = copy;
                }
            }
            copies.push(copy);
        }
        Ok(TransformStep::Privatize {
            original: c,
            copies,
            extra_area,
        })
    }

    /// **Dependence rotation** (paper §3.2.3): rotate the pipeline latch
    /// of a single-stage loop around `pivot`. All latched out-edges of
    /// `pivot` become combinational and all combinational in-edges become
    /// latched — exactly the Figure 4a → 4b rewrite, where the select-tree
    /// root moves behind the latch.
    ///
    /// Logic inside the cycle is only rearranged, so area and cycle-time
    /// are unchanged; the violation moves to the pivot's new combinational
    /// readers, where privatization can finish the job (Figure 4c).
    ///
    /// # Errors
    ///
    /// Returns [`RotateError::NoLatchedOutput`] if the pivot has no latched
    /// out-edge (nothing to rotate).
    pub fn rotate_dependence(&mut self, pivot: LcId) -> Result<TransformStep, RotateError> {
        let has_latched_out = self.edges_from(pivot).any(|e| e.kind == EdgeKind::Latched);
        if !has_latched_out {
            return Err(RotateError::NoLatchedOutput(pivot));
        }
        for e in 0..self.edges.len() {
            let edge = &mut self.edges[e];
            if edge.from == pivot && edge.kind == EdgeKind::Latched {
                edge.kind = EdgeKind::Combinational;
            } else if edge.to == pivot && edge.kind == EdgeKind::Combinational {
                edge.kind = EdgeKind::Latched;
            }
        }
        Ok(TransformStep::Rotate { pivot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{figure3a, figure4a};

    #[test]
    fn cycle_split_restores_ici_in_figure3() {
        let (mut g, lcx, lcy, lcz) = figure3a();
        assert!(!g.ici_holds(&[lcx, lcy, lcz]));
        let edges: Vec<EdgeId> = g.edges_from(lcx).map(|e| e.id).collect();
        let step = g.cycle_split(&edges);
        match step {
            TransformStep::CycleSplit { edges } => assert_eq!(edges.len(), 2),
            other => panic!("unexpected step {other:?}"),
        }
        assert!(g.ici_holds(&[lcx, lcy, lcz]));
        assert_eq!(g.super_components().len(), 3);
    }

    #[test]
    fn privatization_makes_two_super_components_in_figure3() {
        let (mut g, lcx, lcy, lcz) = figure3a();
        let step = g
            .privatize(lcx, &[vec![lcy], vec![lcz]])
            .expect("lcy/lcz are the readers");
        let copies = match &step {
            TransformStep::Privatize {
                copies, extra_area, ..
            } => {
                assert_eq!(*extra_area, g.node(lcx).area);
                copies.clone()
            }
            other => panic!("unexpected step {other:?}"),
        };
        assert_eq!(copies.len(), 1);
        // Two super-components: {LCX, LCY} and {LCX#1, LCZ}.
        let report = g.isolation_report();
        assert_eq!(report.super_components.len(), 2);
        assert!(!report.separable(lcx, lcy));
        assert!(!report.separable(copies[0], lcz));
        assert!(report.separable(lcy, lcz));
    }

    #[test]
    fn privatize_rejects_bad_groups() {
        let (mut g, lcx, lcy, lcz) = figure3a();
        assert_eq!(
            g.privatize(lcx, &[vec![lcy]]),
            Err(PrivatizeError::TooFewGroups)
        );
        assert_eq!(
            g.privatize(lcx, &[vec![lcy], vec![lcx]]),
            Err(PrivatizeError::NotAReader {
                component: lcx,
                reader: lcx
            })
        );
        assert_eq!(
            g.privatize(lcz, &[vec![lcy], vec![lcy]]),
            Err(PrivatizeError::NotAReader {
                component: lcz,
                reader: lcy
            })
        );
    }

    #[test]
    fn figure4_rotation_then_privatization() {
        // Figure 4a: LCA, LCB feed LCC combinationally; LCC feeds them back
        // through the pipeline latch (single-stage loop).
        let (mut g, lca, lcb, lcc) = figure4a();
        assert!(!g.ici_holds(&[lca, lcb, lcc]));

        // Rotation alone moves the violation (Figure 4b): LCC now reads
        // from the latch, LCA/LCB read LCC combinationally.
        g.rotate_dependence(lcc).expect("lcc has latched outputs");
        assert!(!g.ici_holds(&[lca, lcb, lcc]));
        let readers = g.combinational_readers(lcc);
        assert_eq!(readers, vec![lca, lcb]);

        // Privatizing LCC finishes the job (Figure 4c): two
        // super-components {LCC,LCA} and {LCC#1,LCB}.
        let step = g.privatize(lcc, &[vec![lca], vec![lcb]]).unwrap();
        let report = g.isolation_report();
        assert_eq!(report.super_components.len(), 2);
        if let TransformStep::Privatize { copies, .. } = step {
            assert!(!report.separable(lcc, lca));
            assert!(!report.separable(copies[0], lcb));
        }
    }

    #[test]
    fn rotation_requires_latched_output() {
        let (mut g, lca, _lcb, _lcc) = figure4a();
        assert_eq!(
            g.rotate_dependence(lca),
            Err(RotateError::NoLatchedOutput(lca))
        );
    }

    #[test]
    fn transform_log_accumulates_costs() {
        let (mut g, lcx, lcy, lcz) = figure3a();
        let mut log = TransformLog::default();
        let edges: Vec<EdgeId> = g.edges_from(lcx).map(|e| e.id).collect();
        log.steps.push(g.cycle_split(&edges));
        log.steps.push(
            g.privatize(lcy, &[vec![lcz], vec![lcz]])
                .err()
                .map_or_else(|| unreachable!(), |_| TransformStep::Rotate { pivot: lcy }),
        );
        assert_eq!(log.added_latency(), 1);
        assert_eq!(log.added_area(), 0.0);
    }
}
