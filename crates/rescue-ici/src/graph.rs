//! The logic-component dependence graph.

use std::fmt;

/// Identifier of a logic component in an [`LcGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LcId(pub(crate) u32);

/// Identifier of an edge in an [`LcGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl LcId {
    /// Dense index of the component.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from [`LcId::index`]. Valid only for indices obtained
    /// from the same graph.
    pub fn from_index(i: usize) -> Self {
        LcId(i as u32)
    }
}

impl EdgeId {
    /// Dense index of the edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lc{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether communication along an edge crosses a pipeline latch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The reader sees the writer's output within the same cycle.
    /// Combinational edges are what violate ICI.
    Combinational,
    /// The value is captured into a pipeline latch and read next cycle.
    Latched,
}

impl EdgeKind {
    /// True for [`EdgeKind::Combinational`].
    pub fn is_combinational(self) -> bool {
        matches!(self, EdgeKind::Combinational)
    }
}

/// A logic component: a unit of microarchitectural logic that can be
/// individually disabled when faulty.
#[derive(Clone, Debug, PartialEq)]
pub struct LcNode {
    /// Human-readable name (e.g. `"issue.select.old_half"`).
    pub name: String,
    /// Relative area, used by privatization cost accounting.
    pub area: f64,
    /// If this node was created by privatization, the original it copies.
    pub copy_of: Option<LcId>,
}

/// A directed communication edge between two components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LcEdge {
    /// Writing component.
    pub from: LcId,
    /// Reading component.
    pub to: LcId,
    /// Same-cycle or latched.
    pub kind: EdgeKind,
}

/// An edge together with its id, as yielded by graph iterators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Id for use with transformation APIs.
    pub id: EdgeId,
    /// Writing component.
    pub from: LcId,
    /// Reading component.
    pub to: LcId,
    /// Same-cycle or latched.
    pub kind: EdgeKind,
}

/// Directed dependence graph over logic components.
///
/// Edges are never removed; transformations retag or rewire them so that
/// ids in a [`crate::TransformLog`] stay valid.
#[derive(Clone, Debug, Default)]
pub struct LcGraph {
    pub(crate) nodes: Vec<LcNode>,
    pub(crate) edges: Vec<LcEdge>,
}

impl LcGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component with the given display name and relative area.
    pub fn add_component(&mut self, name: &str, area: f64) -> LcId {
        assert!(area >= 0.0, "component area must be non-negative");
        self.nodes.push(LcNode {
            name: name.to_owned(),
            area,
            copy_of: None,
        });
        LcId((self.nodes.len() - 1) as u32)
    }

    /// Add a communication edge.
    pub fn add_edge(&mut self, from: LcId, to: LcId, kind: EdgeKind) -> EdgeId {
        assert!(from.index() < self.nodes.len(), "unknown source component");
        assert!(to.index() < self.nodes.len(), "unknown target component");
        self.edges.push(LcEdge { from, to, kind });
        EdgeId((self.edges.len() - 1) as u32)
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Look up a component.
    pub fn node(&self, id: LcId) -> &LcNode {
        &self.nodes[id.index()]
    }

    /// Look up an edge.
    pub fn edge(&self, id: EdgeId) -> &LcEdge {
        &self.edges[id.index()]
    }

    /// Find a component by name.
    pub fn find(&self, name: &str) -> Option<LcId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| LcId(i as u32))
    }

    /// Iterate over all component ids.
    pub fn component_ids(&self) -> impl Iterator<Item = LcId> {
        (0..self.nodes.len() as u32).map(LcId)
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| EdgeRef {
            id: EdgeId(i as u32),
            from: e.from,
            to: e.to,
            kind: e.kind,
        })
    }

    /// Edges leaving `from`.
    pub fn edges_from(&self, from: LcId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges().filter(move |e| e.from == from)
    }

    /// Edges entering `to`.
    pub fn edges_to(&self, to: LcId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges().filter(move |e| e.to == to)
    }

    /// Sum of component areas (copies included).
    pub fn total_area(&self) -> f64 {
        self.nodes.iter().map(|n| n.area).sum()
    }

    /// Components that read `c` through combinational edges.
    pub fn combinational_readers(&self, c: LcId) -> Vec<LcId> {
        let mut v: Vec<LcId> = self
            .edges_from(c)
            .filter(|e| e.kind.is_combinational())
            .map(|e| e.to)
            .collect();
        v.sort();
        v.dedup();
        v
    }
}
