//! ICI analysis: super-components, violations, and isolation checking.

use crate::graph::{EdgeId, LcGraph, LcId};
use std::fmt;

/// A single ICI violation: a combinational edge connecting two components
/// that the caller wants to isolate independently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending combinational edge.
    pub edge: EdgeId,
    /// The writing component.
    pub from: LcId,
    /// The reading component.
    pub to: LcId,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "combinational edge {} -> {} prevents isolating them separately",
            self.from, self.to
        )
    }
}

/// The result of [`LcGraph::isolation_report`].
#[derive(Clone, Debug)]
pub struct IsolationReport {
    /// Super-components (each inner vec sorted). Scan test can isolate a
    /// fault to exactly one of these sets, never finer.
    pub super_components: Vec<Vec<LcId>>,
    /// For each component, the index into `super_components` it belongs to.
    pub membership: Vec<usize>,
}

impl IsolationReport {
    /// Super-component index of a component.
    pub fn super_component_of(&self, c: LcId) -> usize {
        self.membership[c.index()]
    }

    /// Whether two components can be told apart by scan-based isolation.
    pub fn separable(&self, a: LcId, b: LcId) -> bool {
        self.super_component_of(a) != self.super_component_of(b)
    }
}

impl LcGraph {
    /// Compute super-components: the connected components of the graph
    /// restricted to **combinational** edges (treated as undirected).
    ///
    /// This is the paper's ICI rule in closure form. A combinational edge
    /// X → Y makes X and Y inseparable: a wrong value captured downstream
    /// of Y could have originated in X, and conventional scan cannot tell.
    /// The closure under such edges is the finest isolation granularity.
    pub fn super_components(&self) -> Vec<Vec<LcId>> {
        self.isolation_report().super_components
    }

    /// Full isolation analysis; see [`IsolationReport`].
    pub fn isolation_report(&self) -> IsolationReport {
        let n = self.num_components();
        let mut dsu: Vec<usize> = (0..n).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let r = find(dsu, dsu[x]);
                dsu[x] = r;
            }
            dsu[x]
        }
        for e in self.edges() {
            if e.kind.is_combinational() {
                let a = find(&mut dsu, e.from.index());
                let b = find(&mut dsu, e.to.index());
                if a != b {
                    dsu[a] = b;
                }
            }
        }
        let mut groups: Vec<Vec<LcId>> = Vec::new();
        let mut root_to_group: Vec<Option<usize>> = vec![None; n];
        let mut membership = vec![0usize; n];
        for (i, m) in membership.iter_mut().enumerate() {
            let r = find(&mut dsu, i);
            let gi = match root_to_group[r] {
                Some(g) => g,
                None => {
                    groups.push(Vec::new());
                    root_to_group[r] = Some(groups.len() - 1);
                    groups.len() - 1
                }
            };
            groups[gi].push(LcId(i as u32));
            *m = gi;
        }
        for g in &mut groups {
            g.sort();
        }
        IsolationReport {
            super_components: groups,
            membership,
        }
    }

    /// All combinational edges whose endpoints lie in *different* groups of
    /// the requested isolation partition — i.e. every reason the partition
    /// cannot be achieved with conventional scan.
    ///
    /// `groups` assigns a group index to each component (components sharing
    /// an index are allowed to be inseparable, e.g. a queue half and its
    /// private selection logic). Returns an empty vec when ICI holds for
    /// the partition.
    pub fn check_isolation(&self, groups: &[usize]) -> Vec<Violation> {
        assert_eq!(
            groups.len(),
            self.num_components(),
            "one group index per component required"
        );
        self.edges()
            .filter(|e| e.kind.is_combinational() && groups[e.from.index()] != groups[e.to.index()])
            .map(|e| Violation {
                edge: e.id,
                from: e.from,
                to: e.to,
            })
            .collect()
    }

    /// Components with a combinational path *to* `c` (excluding `c`): the
    /// candidate set scan-based diagnosis reports when a wrong value is
    /// captured at `c`'s output latches.
    pub fn combinational_ancestors(&self, c: LcId) -> Vec<LcId> {
        let mut seen = vec![false; self.num_components()];
        let mut stack = vec![c];
        seen[c.index()] = true;
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            for e in self.edges_to(x) {
                if e.kind.is_combinational() && !seen[e.from.index()] {
                    seen[e.from.index()] = true;
                    out.push(e.from);
                    stack.push(e.from);
                }
            }
        }
        out.sort();
        out
    }

    /// Whether the set `set` satisfies the ICI rule: no combinational
    /// communication among its members (paper Section 3.1).
    pub fn ici_holds(&self, set: &[LcId]) -> bool {
        let mut in_set = vec![false; self.num_components()];
        for &c in set {
            in_set[c.index()] = true;
        }
        // Direct combinational edges within the set violate ICI; so do
        // paths through components outside the set, because a fault in one
        // member still corrupts another member's outputs within the cycle.
        for &c in set {
            for a in self.combinational_ancestors(c) {
                if a != c && in_set[a.index()] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;

    #[test]
    fn latched_edges_do_not_merge() {
        let mut g = LcGraph::new();
        let a = g.add_component("a", 1.0);
        let b = g.add_component("b", 1.0);
        g.add_edge(a, b, EdgeKind::Latched);
        assert_eq!(g.super_components().len(), 2);
        assert!(g.ici_holds(&[a, b]));
    }

    #[test]
    fn combinational_chain_merges_transitively() {
        let mut g = LcGraph::new();
        let a = g.add_component("a", 1.0);
        let b = g.add_component("b", 1.0);
        let c = g.add_component("c", 1.0);
        g.add_edge(a, b, EdgeKind::Combinational);
        g.add_edge(b, c, EdgeKind::Combinational);
        let sc = g.super_components();
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0], vec![a, b, c]);
        assert!(!g.ici_holds(&[a, c]));
    }

    #[test]
    fn check_isolation_reports_cross_group_edges_only() {
        let mut g = LcGraph::new();
        let a = g.add_component("a", 1.0);
        let b = g.add_component("b", 1.0);
        let c = g.add_component("c", 1.0);
        let e_ab = g.add_edge(a, b, EdgeKind::Combinational);
        g.add_edge(b, c, EdgeKind::Latched);
        // a and b in different groups: the comb edge violates.
        let v = g.check_isolation(&[0, 1, 1]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].edge, e_ab);
        // a and b in the same group: fine.
        assert!(g.check_isolation(&[0, 0, 1]).is_empty());
    }

    #[test]
    fn ancestors_follow_only_combinational_paths() {
        let mut g = LcGraph::new();
        let a = g.add_component("a", 1.0);
        let b = g.add_component("b", 1.0);
        let c = g.add_component("c", 1.0);
        let d = g.add_component("d", 1.0);
        g.add_edge(a, b, EdgeKind::Combinational);
        g.add_edge(b, c, EdgeKind::Combinational);
        g.add_edge(d, c, EdgeKind::Latched);
        assert_eq!(g.combinational_ancestors(c), vec![a, b]);
        assert!(g.combinational_ancestors(a).is_empty());
    }
}
