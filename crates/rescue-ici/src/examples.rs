//! Ready-made graphs for the paper's running examples and the issue stage.

use crate::graph::{EdgeKind, LcGraph, LcId};

/// Paper Figure 3a: LCX drives both LCY and LCZ combinationally inside one
/// pipeline stage. Returns `(graph, lcx, lcy, lcz)`.
pub fn figure3a() -> (LcGraph, LcId, LcId, LcId) {
    let mut g = LcGraph::new();
    let lcx = g.add_component("LCX", 1.0);
    let lcy = g.add_component("LCY", 1.0);
    let lcz = g.add_component("LCZ", 1.0);
    g.add_edge(lcx, lcy, EdgeKind::Combinational);
    g.add_edge(lcx, lcz, EdgeKind::Combinational);
    (g, lcx, lcy, lcz)
}

/// Paper Figure 4a: a single-stage loop. LCA and LCB feed LCC within the
/// cycle; LCC's result returns to LCA and LCB through the pipeline latch.
/// This is the shape of superscalar select (LCC = select-tree root, LCA/LCB
/// = per-half queue + sub-tree). Returns `(graph, lca, lcb, lcc)`.
pub fn figure4a() -> (LcGraph, LcId, LcId, LcId) {
    let mut g = LcGraph::new();
    let lca = g.add_component("LCA", 1.0);
    let lcb = g.add_component("LCB", 1.0);
    let lcc = g.add_component("LCC", 0.5);
    g.add_edge(lca, lcc, EdgeKind::Combinational);
    g.add_edge(lcb, lcc, EdgeKind::Combinational);
    g.add_edge(lcc, lca, EdgeKind::Latched);
    g.add_edge(lcc, lcb, EdgeKind::Latched);
    (g, lca, lcb, lcc)
}

/// The baseline compacting issue queue of paper Section 4.1.1 as an LC
/// graph, with its three ICI violations:
///
/// 1. compaction of the new half depends on free slots in the old half,
/// 2. compaction of the old half depends on entries in the new half,
/// 3. selection in each half depends on ready instructions in the other
///    (through the shared select-tree root).
///
/// Component names: `iq.old`, `iq.new`, `compact.old`, `compact.new`,
/// `select.root`, `select.old`, `select.new`.
pub fn issue_stage_graph() -> LcGraph {
    let mut g = LcGraph::new();
    let old = g.add_component("iq.old", 2.0);
    let new = g.add_component("iq.new", 2.0);
    let comp_old = g.add_component("compact.old", 0.5);
    let comp_new = g.add_component("compact.new", 0.5);
    let sel_old = g.add_component("select.old", 0.5);
    let sel_new = g.add_component("select.new", 0.5);
    let root = g.add_component("select.root", 0.25);

    // Queue halves feed their compaction and selection logic (private,
    // same super-component, allowed).
    g.add_edge(old, comp_old, EdgeKind::Combinational);
    g.add_edge(new, comp_new, EdgeKind::Combinational);
    g.add_edge(old, sel_old, EdgeKind::Combinational);
    g.add_edge(new, sel_new, EdgeKind::Combinational);

    // Violation 1 & 2: inter-segment compaction within a cycle.
    g.add_edge(old, comp_new, EdgeKind::Combinational);
    g.add_edge(new, comp_old, EdgeKind::Combinational);

    // Violation 3: the select-tree root reads both halves' sub-trees in a
    // cycle and the selected instructions broadcast back next cycle.
    g.add_edge(sel_old, root, EdgeKind::Combinational);
    g.add_edge(sel_new, root, EdgeKind::Combinational);
    g.add_edge(root, old, EdgeKind::Latched);
    g.add_edge(root, new, EdgeKind::Latched);

    // Compaction writes back into the queue halves within the cycle.
    g.add_edge(comp_old, old, EdgeKind::Combinational);
    g.add_edge(comp_new, new, EdgeKind::Combinational);

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_issue_queue_is_one_super_component() {
        let g = issue_stage_graph();
        // Everything is welded together by the three violations.
        assert_eq!(g.super_components().len(), 1);
    }

    #[test]
    fn issue_queue_transform_sequence_isolates_halves() {
        // Reproduce Section 4.1.2: cycle-split inter-segment compaction,
        // rotate the select root, then privatize it per half.
        let mut g = issue_stage_graph();
        let old = g.find("iq.old").unwrap();
        let new = g.find("iq.new").unwrap();
        let comp_old = g.find("compact.old").unwrap();
        let comp_new = g.find("compact.new").unwrap();
        let sel_old = g.find("select.old").unwrap();
        let sel_new = g.find("select.new").unwrap();
        let root = g.find("select.root").unwrap();

        // Step 1: cycle splitting of inter-segment compaction.
        let cross: Vec<_> = g
            .edges()
            .filter(|e| {
                e.kind.is_combinational()
                    && ((e.from == old && e.to == comp_new) || (e.from == new && e.to == comp_old))
            })
            .map(|e| e.id)
            .collect();
        g.cycle_split(&cross);

        // Step 2: dependence rotation around the select root.
        g.rotate_dependence(root).unwrap();

        // Step 3: privatize the root (one copy per half). After rotation
        // its combinational readers are the queue halves.
        g.privatize(root, &[vec![old], vec![new]])
            .unwrap_or_else(|e| panic!("privatize failed: {e}"));

        // Result: two super-components, one per half.
        let report = g.isolation_report();
        assert_eq!(report.super_components.len(), 2);
        assert!(report.separable(old, new));
        assert!(!report.separable(old, sel_old));
        assert!(!report.separable(new, sel_new));
    }
}
