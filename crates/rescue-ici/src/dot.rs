//! Graphviz DOT export of LC graphs: super-components as clusters,
//! combinational edges solid (the ICI hazards), latched edges dashed.

use crate::graph::LcGraph;
use std::fmt::Write as _;

/// Render the graph in Graphviz DOT format.
///
/// Super-components become subgraph clusters so `dot -Tsvg` shows the
/// isolation granularity at a glance; a one-node cluster means the
/// component is individually isolable.
pub fn to_dot(graph: &LcGraph, title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{title}\" {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    for (gi, group) in graph.super_components().iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{gi} {{");
        let _ = writeln!(s, "    label=\"super-component {gi}\";");
        let _ = writeln!(s, "    style=rounded;");
        for &c in group {
            let node = graph.node(c);
            let _ = writeln!(
                s,
                "    n{} [label=\"{}\\narea {:.2}\"];",
                c.index(),
                node.name,
                node.area
            );
        }
        let _ = writeln!(s, "  }}");
    }
    for e in graph.edges() {
        let style = if e.kind.is_combinational() {
            "solid, color=red"
        } else {
            "dashed, color=gray40"
        };
        let _ = writeln!(
            s,
            "  n{} -> n{} [style=\"{style}\"];",
            e.from.index(),
            e.to.index()
        );
    }
    let _ = writeln!(s, "}}");
    s
}

impl LcGraph {
    /// Render this graph as Graphviz DOT (see [`to_dot`]).
    pub fn to_dot(&self, title: &str) -> String {
        to_dot(self, title)
    }
}

#[cfg(test)]
mod tests {

    use crate::examples::{figure3a, issue_stage_graph};

    #[test]
    fn dot_output_is_well_formed() {
        let (g, ..) = figure3a();
        let d = g.to_dot("fig3a");
        assert!(d.starts_with("digraph \"fig3a\" {"));
        assert!(d.trim_end().ends_with('}'));
        assert_eq!(
            d.matches("subgraph cluster_").count(),
            g.super_components().len()
        );
        // Combinational edges are red, latched ones gray.
        assert!(d.contains("color=red"));
        assert!(d.contains("LCX"));
    }

    #[test]
    fn issue_stage_renders_every_component() {
        let g = issue_stage_graph();
        let d = g.to_dot("issue");
        for c in g.component_ids() {
            assert!(d.contains(&g.node(c).name));
        }
        assert_eq!(d.matches(" -> ").count(), g.num_edges());
    }
}
