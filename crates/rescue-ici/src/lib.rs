//! Intra-cycle logic independence (ICI): the formal core of the Rescue
//! paper (Schuchman & Vijaykumar, ISCA 2005), Section 3.
//!
//! A design is modeled as a directed graph of **logic components** whose
//! edges are either *combinational* (the reader sees the writer's output
//! within the same clock cycle) or *latched* (the value crosses a pipeline
//! latch, arriving one cycle later).
//!
//! The **ICI rule**: a scan-detectable fault can be attributed to one and
//! only one member of a component set if and only if there is no
//! combinational communication among the members. Components connected by
//! combinational edges collapse into *super-components* — the finest
//! granularity conventional scan test can isolate faults to.
//!
//! The crate implements the rule ([`LcGraph::super_components`],
//! [`LcGraph::check_isolation`]) and the paper's three transformations
//! that restore ICI where it is violated:
//!
//! * **cycle splitting** ([`LcGraph::cycle_split`]) — latch a set of
//!   combinational edges, trading a cycle of latency,
//! * **logic privatization** ([`LcGraph::privatize`]) — replicate a shared
//!   component so reader groups get private copies, trading area,
//! * **dependence rotation** ([`LcGraph::rotate_dependence`]) — move the
//!   pipeline latch around a single-stage loop so the troublesome
//!   combination point lands behind the latch, trading nothing within the
//!   cycle but changing *which* violation must then be fixed.
//!
//! # Example: the paper's Figure 3
//!
//! ```
//! use rescue_ici::{EdgeKind, LcGraph};
//!
//! let mut g = LcGraph::new();
//! let lcx = g.add_component("LCX", 1.0);
//! let lcy = g.add_component("LCY", 1.0);
//! let lcz = g.add_component("LCZ", 1.0);
//! g.add_edge(lcx, lcy, EdgeKind::Combinational);
//! g.add_edge(lcx, lcz, EdgeKind::Combinational);
//!
//! // LCY and LCZ both read LCX in-cycle: one super-component.
//! assert_eq!(g.super_components().len(), 1);
//!
//! // Cycle splitting (Figure 3b) restores full isolation.
//! let mut split = g.clone();
//! let edges: Vec<_> = split.edges_from(lcx).map(|e| e.id).collect();
//! split.cycle_split(&edges);
//! assert_eq!(split.super_components().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dot;
mod examples;
mod graph;
mod transform;

pub use analysis::{IsolationReport, Violation};
pub use dot::to_dot;
pub use examples::{figure3a, figure4a, issue_stage_graph};
pub use graph::{EdgeId, EdgeKind, EdgeRef, LcEdge, LcGraph, LcId, LcNode};
pub use transform::{PrivatizeError, RotateError, TransformLog, TransformStep};
