//! Quickstart: the full Rescue flow on a small custom circuit.
//!
//! Builds a two-component circuit, inserts a scan chain, runs ATPG,
//! injects a stuck-at fault, and shows scan-based isolation naming the
//! faulty component — the paper's core claim in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use rescue_core::atpg::{Atpg, AtpgConfig, Isolator};
use rescue_core::netlist::{scan::insert_scan, Fault, NetlistBuilder, StuckAt};

fn main() {
    // Two logic components that communicate only through a pipeline
    // latch: the circuit satisfies intra-cycle logic independence.
    let mut b = NetlistBuilder::new();

    b.enter_component("adder");
    let x = b.input_bus("x", 4);
    let y = b.input_bus("y", 4);
    let mut carry = b.const0();
    let mut sums = Vec::new();
    for i in 0..4 {
        let p = b.xor2(x[i], y[i]);
        let s = b.xor2(p, carry);
        let g1 = b.and2(x[i], y[i]);
        let g2 = b.and2(p, carry);
        carry = b.or2(g1, g2);
        sums.push(s);
    }
    let sum_q = b.dff_bus(&sums, "sum");

    b.enter_component("zero_detect");
    let any = b.or(&sum_q);
    let zero = b.not(any);
    let zq = b.dff(zero, "is_zero");
    b.output(zq, "zero_flag");

    let netlist = b.finish().expect("well-formed circuit");
    println!(
        "circuit: {} gates, {} flip-flops, {} components",
        netlist.num_gates(),
        netlist.num_dffs(),
        netlist.num_components()
    );

    // Full-scan insertion: every flip-flop becomes a muxed-FF scan cell.
    let scanned = insert_scan(&netlist).expect("design has flip-flops");
    println!("scan chain: {} cells", scanned.chain.len());

    // ATPG: PODEM + parallel-pattern fault simulation.
    let run = Atpg::new(&scanned, AtpgConfig::default())
        .unwrap()
        .run()
        .unwrap();
    println!(
        "ATPG: {} vectors, {:.1}% coverage, {} tester cycles",
        run.stats.vectors,
        run.coverage() * 100.0,
        run.stats.cycles
    );

    // Inject a stuck-at-0 on one of the adder's sum bits and isolate it.
    let fault = Fault::net(sums[2], StuckAt::Zero);
    let _ = carry;
    let iso = Isolator::new(&scanned, &run.vectors);
    let outcome = iso.isolate(fault);
    let names: Vec<&str> = outcome
        .candidates
        .iter()
        .map(|&c| scanned.netlist.component_name(c))
        .collect();
    println!(
        "injected {fault} -> detected at {} scan bits, isolated to {:?}",
        outcome.failing_bits.len(),
        names
    );
    assert_eq!(names, ["adder"], "ICI guarantees single-lookup isolation");
    println!("isolation succeeded: the faulty component can be mapped out");
}
