//! The memory-array story the paper's introduction tells: BIST with
//! spare rows/columns repairs array defects, which is why Rescue can
//! focus on the irregular core logic.
//!
//! Run with: `cargo run --release --example array_repair`

use rescue_arrays::{
    array_yield_with_spares, array_yield_without_spares, march_cminus, repair_allocate,
    ArrayConfig, MemoryArray,
};

fn main() {
    // A rename-table-sized array with two spare rows and one spare column.
    let cfg = ArrayConfig {
        rows: 64,
        cols: 32,
        spare_rows: 2,
        spare_cols: 1,
    };

    // Fabricate a defective instance: one dead word line, two weak cells.
    let mut array = MemoryArray::new(cfg);
    array.inject_row_fault(17);
    array.inject_cell_fault(3, 9, true);
    array.inject_cell_fault(40, 9, false);

    // March C- BIST finds everything.
    let bitmap = march_cminus(&mut array);
    println!(
        "March C-: {} reads, {} writes, {} failing cells",
        bitmap.reads,
        bitmap.writes,
        bitmap.fails.len()
    );

    // Must-repair + greedy allocation maps the failures onto the spares.
    match repair_allocate(&bitmap, cfg) {
        Ok(plan) => {
            println!(
                "repaired: spare rows -> {:?}, spare cols -> {:?}",
                plan.rows, plan.cols
            );
        }
        Err(e) => println!("scrapped: {e}"),
    }

    // The yield math behind the paper's premise.
    for p_cell in [1e-4, 5e-4, 2e-3] {
        println!(
            "p_cell = {:.0e}: yield without spares {:5.1}%, with spares {:5.1}%",
            p_cell,
            100.0 * array_yield_without_spares(cfg, p_cell),
            100.0 * array_yield_with_spares(cfg, p_cell)
        );
    }
    println!("\nSpares keep arrays near-perfect while core logic yield collapses —\nexactly the asymmetry Rescue exists to fix.");
}
