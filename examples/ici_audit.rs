//! Audit a microarchitecture for intra-cycle logic independence and
//! repair it with the paper's three transformations.
//!
//! The scenario is §4.1's issue stage: a compacting issue queue whose
//! halves are welded together by cross-half compaction and a shared
//! select-tree root. We detect the violations, then apply cycle
//! splitting, dependence rotation, and privatization exactly as the
//! paper prescribes, and watch the super-components split.
//!
//! Run with: `cargo run --release --example ici_audit`

use rescue_core::ici::{issue_stage_graph, LcGraph, LcId, TransformLog};

fn show(graph: &LcGraph, label: &str) {
    let groups = graph.super_components();
    println!("{label}: {} super-component(s)", groups.len());
    for (i, g) in groups.iter().enumerate() {
        let names: Vec<&str> = g.iter().map(|&c| graph.node(c).name.as_str()).collect();
        println!("  [{i}] {names:?}");
    }
}

fn main() {
    let mut g = issue_stage_graph();
    show(&g, "baseline issue stage");

    let old = g.find("iq.old").expect("component exists");
    let new = g.find("iq.new").expect("component exists");
    let comp_old = g.find("compact.old").expect("component exists");
    let comp_new = g.find("compact.new").expect("component exists");
    let root = g.find("select.root").expect("component exists");

    let mut log = TransformLog::default();

    // Step 1 (§4.1.2): cycle-split inter-segment compaction. This is
    // acceptable because it does not lengthen the issue-wakeup loop.
    let cross: Vec<_> = g
        .edges()
        .filter(|e| {
            e.kind.is_combinational()
                && ((e.from == old && e.to == comp_new) || (e.from == new && e.to == comp_old))
        })
        .map(|e| e.id)
        .collect();
    log.steps.push(g.cycle_split(&cross));
    show(&g, "after cycle-splitting inter-segment compaction");

    // Step 2: dependence rotation moves the select-tree root behind the
    // pipeline latch (cycle splitting here would break back-to-back
    // issue).
    log.steps
        .push(g.rotate_dependence(root).expect("root has latched outputs"));
    show(&g, "after rotating the select root");

    // Step 3: privatize the rotated root per queue half.
    let groups: Vec<Vec<LcId>> = vec![vec![old], vec![new]];
    log.steps.push(
        g.privatize(root, &groups)
            .expect("root's combinational readers are the halves"),
    );
    show(&g, "after privatizing the root (Figure 4c)");

    println!(
        "cost: +{} cycle(s) of latency on the split cut, +{:.2} area units",
        log.added_latency(),
        log.added_area()
    );

    let report = g.isolation_report();
    assert!(report.separable(old, new));
    println!(
        "issue-queue halves are now separately isolable — faults map out half a queue, not a core"
    );
}
