//! Explore the yield model: defect densities, core counts, and the
//! crossover where Rescue overtakes core sparing.
//!
//! Uses a simple analytic IPC-degradation model (each lost resource class
//! costs 12%) so it runs instantly; the real Figure 9 binary uses
//! simulated IPCs.
//!
//! Run with: `cargo run --release --example yield_explorer`

use rescue_core::yield_model::{
    relative_yat, AreaModel, ClassCounts, Scenario, TechNode, YatInputs,
};

fn main() {
    let base = AreaModel::baseline();
    let rescue = base.rescue();
    println!(
        "areas: baseline core {:.1} mm², Rescue core {:.1} mm² ({:+.1}%)",
        base.total_mm2(),
        rescue.total_mm2,
        100.0 * (rescue.total_mm2 / base.total_mm2() - 1.0)
    );
    for row in rescue.table2() {
        println!("  {:18} {:4.1}%", row.name, row.fraction * 100.0);
    }

    let ipc = |cfg: ClassCounts| -> f64 {
        let lost = cfg.iter().filter(|&&k| k == 1).count() as f64;
        0.96 * (1.0 - 0.12 * lost)
    };

    for (label, sc) in [
        ("PWP stagnates at 90nm", Scenario::pwp_stagnates_at_90nm()),
        ("PWP stagnates at 65nm", Scenario::pwp_stagnates_at_65nm()),
    ] {
        println!("\nscenario: {label}");
        println!(
            "{:>6} {:>10} {:>6} {:>8} {:>8} {:>8} {:>10}",
            "node", "faults/cm²", "cores", "none", "+CS", "+Rescue", "Rescue/CS"
        );
        for node in TechNode::figure9_nodes() {
            let inputs = YatInputs {
                ipc_baseline: 1.0,
                ipc_rescue: &ipc,
            };
            let p = relative_yat(&sc, node, 1.3, &inputs);
            println!(
                "{:>4}nm {:>10.2} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>9.1}%",
                node.0,
                sc.fault_density(node) * 100.0,
                p.cores,
                p.none,
                p.core_sparing,
                p.rescue,
                100.0 * (p.rescue / p.core_sparing - 1.0)
            );
        }
    }
    println!("\nThe Rescue/CS gap widens as defect density climbs: fine-grain map-out\nsalvages cores that sparing would discard.");
}
