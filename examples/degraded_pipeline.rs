//! Explore how a Rescue core degrades as components are mapped out.
//!
//! Simulates one SPEC2000-like workload on a ladder of degraded
//! configurations — the IPC values that feed the paper's YAT math — and
//! prints the throughput each map-out step costs.
//!
//! Run with: `cargo run --release --example degraded_pipeline [benchmark]`

use rescue_core::pipesim::{simulate, CoreConfig, Policy, SimConfig};
use rescue_core::workloads::{BenchmarkProfile, TraceGenerator};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let prof = BenchmarkProfile::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; try gcc, mcf, swim, ..."));
    let cfg = SimConfig::paper(Policy::Rescue);
    let base_cfg = SimConfig::paper(Policy::Baseline);
    let n = 100_000;

    let ladder: Vec<(&str, CoreConfig)> = vec![
        ("fault-free", CoreConfig::healthy()),
        (
            "half int IQ",
            CoreConfig {
                int_iq_halves: 1,
                ..CoreConfig::healthy()
            },
        ),
        (
            "half LSQ",
            CoreConfig {
                lsq_halves: 1,
                ..CoreConfig::healthy()
            },
        ),
        (
            "one int backend group",
            CoreConfig {
                int_be_groups: 1,
                ..CoreConfig::healthy()
            },
        ),
        (
            "one fp backend group",
            CoreConfig {
                fp_be_groups: 1,
                ..CoreConfig::healthy()
            },
        ),
        (
            "one frontend group",
            CoreConfig {
                frontend_groups: 1,
                ..CoreConfig::healthy()
            },
        ),
        (
            "worst case (all halved)",
            CoreConfig {
                frontend_groups: 1,
                int_iq_halves: 1,
                fp_iq_halves: 1,
                lsq_halves: 1,
                int_be_groups: 1,
                fp_be_groups: 1,
            },
        ),
    ];

    let baseline = simulate(
        &base_cfg,
        &CoreConfig::healthy(),
        TraceGenerator::new(&prof, 7),
        n,
    );
    println!(
        "benchmark {name}: baseline (pre-Rescue) IPC = {:.3}\n",
        baseline.ipc()
    );
    println!("{:28} {:>7} {:>12}", "configuration", "IPC", "vs baseline");
    for (label, core) in ladder {
        let r = simulate(&cfg, &core, TraceGenerator::new(&prof, 7), n);
        println!(
            "{:28} {:>7.3} {:>11.1}%",
            label,
            r.ipc(),
            100.0 * (r.ipc() / baseline.ipc() - 1.0)
        );
    }
    println!(
        "\nEven the worst-case core keeps running — that is the YAT advantage over core sparing."
    );
}
