//! Workspace-level integration tests spanning every crate: netlist →
//! ICI → model → scan → ATPG → isolation on one side, workloads →
//! pipesim → yield → YAT on the other, meeting in the paper's claims.

use rescue_core::atpg::{Atpg, AtpgConfig, Isolator};
use rescue_core::experiments::class_counts_of;
use rescue_core::model::{build_pipeline, extract_lc_graph, ModelParams, Variant};
use rescue_core::netlist::scan::insert_scan;
use rescue_core::pipesim::{simulate, CoreConfig, Policy, SimConfig};
use rescue_core::workloads::{BenchmarkProfile, TraceGenerator};
use rescue_core::yield_model::{relative_yat, Scenario, TechNode, YatInputs};

/// The paper's central structural claim, end to end: the Rescue pipeline
/// passes the ICI check, and a fault injected into the issue queue is
/// isolated to the right half by conventional scan test alone.
#[test]
fn end_to_end_issue_queue_fault_isolation() {
    let params = ModelParams::tiny();
    let model = build_pipeline(&params, Variant::Rescue);
    assert!(model.check_ici().is_empty());

    let scanned = insert_scan(&model.netlist).expect("model has state");
    let run = Atpg::new(&scanned, AtpgConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert!(run.coverage() > 0.95, "coverage {}", run.coverage());

    // Pick a detected fault inside the old issue-queue half.
    let old_group = model
        .groups
        .iter()
        .position(|g| g.name == "issue.old")
        .expect("group exists");
    let fault = run
        .classes
        .iter()
        .find(|(f, c)| {
            **c == rescue_core::atpg::FaultClass::Detected
                && model
                    .netlist
                    .fault_component(**f)
                    .is_some_and(|comp| model.group_of(comp) == old_group)
        })
        .map(|(f, _)| *f)
        .expect("some detected fault in the old half");

    let iso = Isolator::new(&scanned, &run.vectors);
    let outcome = iso.isolate(fault);
    assert!(outcome.detected());
    for &c in &outcome.candidates {
        assert_eq!(model.group_of(c), old_group);
    }
}

/// The LC graph extracted from the generated netlist agrees with the
/// hand-built issue-stage analysis: baseline merges the queue halves,
/// Rescue separates them.
#[test]
fn lc_graph_extraction_matches_design_intent() {
    let base = build_pipeline(&ModelParams::tiny(), Variant::Baseline);
    let resc = build_pipeline(&ModelParams::tiny(), Variant::Rescue);
    let gb = extract_lc_graph(&base.netlist).graph;
    let gr = extract_lc_graph(&resc.netlist).graph;

    let rb = gb.isolation_report();
    let rr = gr.isolation_report();
    let find = |g: &rescue_core::ici::LcGraph, n: &str| g.find(n).expect("component");

    // Baseline: iq.old and iq.new share a super-component.
    assert!(!rb.separable(find(&gb, "iq.old"), find(&gb, "iq.new")));
    // Rescue: they are separable.
    assert!(rr.separable(find(&gr, "iq.old"), find(&gr, "iq.new")));
}

/// IPC and YAT plumb together: feeding simulated IPCs into the yield
/// model reproduces the Rescue-beats-CS crossover under scaling.
#[test]
fn simulated_ipcs_drive_yat_crossover() {
    let prof = BenchmarkProfile::by_name("vortex").unwrap();
    let n = 6_000;
    let base_ipc = simulate(
        &SimConfig::paper(Policy::Baseline),
        &CoreConfig::healthy(),
        TraceGenerator::new(&prof, 9),
        n,
    )
    .ipc();

    let mut cache = std::collections::HashMap::new();
    for cfg in CoreConfig::all_degraded() {
        let ipc = simulate(
            &SimConfig::paper(Policy::Rescue),
            &cfg,
            TraceGenerator::new(&prof, 9),
            n,
        )
        .ipc();
        cache.insert(class_counts_of(&cfg), ipc);
    }
    let f = |c: rescue_core::yield_model::ClassCounts| cache[&c];
    let sc = Scenario::pwp_stagnates_at_90nm();

    let at = |node| {
        let inputs = YatInputs {
            ipc_baseline: base_ipc,
            ipc_rescue: &f,
        };
        relative_yat(&sc, node, 1.3, &inputs)
    };
    let p90 = at(TechNode::NM90);
    let p18 = at(TechNode::NM18);

    // At 90nm the 4% IPC tax makes Rescue's advantage small (possibly
    // negative); by 18nm it must be clearly ahead of core sparing.
    assert!(p18.rescue / p18.core_sparing > 1.05);
    assert!(p18.rescue / p18.core_sparing > p90.rescue / p90.core_sparing);
    // And everything beats no-redundancy at 18nm.
    assert!(p18.none < p18.core_sparing);
}

/// Determinism across the whole stack: same seeds, same numbers. This
/// is the golden test for the observability counters too — every ATPG
/// count (decisions, backtracks, drops per block, gate evaluations)
/// must be bit-identical across runs; only wall-clock timings may vary.
#[test]
fn full_stack_determinism() {
    let t1 = rescue_core::experiments::table3(&ModelParams::tiny());
    let t2 = rescue_core::experiments::table3(&ModelParams::tiny());
    assert_eq!(t1.baseline, t2.baseline);
    assert_eq!(t1.rescue, t2.rescue);
    assert_eq!(t1.baseline_metrics.counts, t2.baseline_metrics.counts);
    assert_eq!(t1.rescue_metrics.counts, t2.rescue_metrics.counts);
    // The coverage curve is part of the golden state: identical across
    // runs, and internally consistent with the engine counters — its
    // endpoint is the detected count the Table 3 coverage is computed
    // from (bit-for-bit, not tolerance).
    assert_eq!(t1.baseline_metrics.coverage, t2.baseline_metrics.coverage);
    assert_eq!(t1.rescue_metrics.coverage, t2.rescue_metrics.coverage);
    for m in [&t1.baseline_metrics, &t1.rescue_metrics] {
        assert_eq!(m.coverage.detected_total(), m.counts.detected);
        assert_eq!(m.coverage.targetable, m.counts.detected + m.counts.aborted);
        let attributed: u64 = m.coverage.attribution.iter().map(|(_, n)| n).sum();
        assert_eq!(attributed, m.counts.detected);
    }
    // The counters must describe real work, not zeros.
    let c = &t1.rescue_metrics.counts;
    assert!(c.podem_decisions > 0);
    assert!(c.blocks_flushed > 0);
    assert!(c.fsim_gate_evals > 0);
    assert!(c.word_utilization() > 0.0 && c.word_utilization() <= 1.0);
}

/// The §3.1 corollary: multiple simultaneous faults — one per map-out
/// group — are all implicated by a single replay of the standard vector
/// set, with no false accusations.
#[test]
fn multi_fault_isolation_implicates_all_faulty_groups() {
    let trials = rescue_core::experiments::multi_fault_isolation(&ModelParams::tiny(), 3, 8, 17);
    assert_eq!(trials.len(), 8);
    for t in &trials {
        assert_eq!(t.false_positives, 0, "no healthy group may be accused");
        // Fault masking between simultaneous faults can hide one
        // occasionally, but most trials must implicate every group.
        assert!(t.implicated >= t.injected - 1);
    }
    let full: usize = trials.iter().filter(|t| t.implicated == t.injected).count();
    assert!(full >= 6, "most trials isolate all faults: {trials:#?}");
}

/// Chain-classification soundness at gate level: shifting the flush
/// pattern through the real scan muxes, every fault on the *shift path*
/// (cell outputs, scan-mux select and chain-input pins, scan_enable,
/// scan_in) fails the chain-integrity test.
#[test]
fn chain_faults_fail_the_flush_test() {
    use rescue_core::atpg::chain_flush_test;
    use rescue_core::netlist::{Driver, FaultSite};

    let model = build_pipeline(&ModelParams::tiny(), Variant::Rescue);
    let scanned = insert_scan(&model.netlist).expect("model has state");
    let atpg = Atpg::new(&scanned, AtpgConfig::default()).unwrap();

    let mut shift_path_checked = 0;
    let mut functional_pin_checked = 0;
    for (i, fault) in scanned.netlist.collapse_faults().into_iter().enumerate() {
        if !atpg.is_chain_fault(fault) {
            continue;
        }
        // Keep runtime bounded: sample the chain-fault population.
        if i % 97 != 0 {
            continue;
        }
        // Flush-detectable = breaks shifting. Two chain-fault families are
        // *not* flush-detectable and are instead caught when capture
        // vectors return garbage: the functional-D pin of a scan mux
        // (pin 1), and scan-enable stuck at its flush-mode value (1).
        let enable_sa1 = fault.stuck_at == rescue_core::netlist::StuckAt::One
            && match fault.site {
                FaultSite::Net(n) => n == scanned.chain.scan_enable,
                FaultSite::GateInput(g, pin) => scanned.netlist.gate(g).is_scan_path() && pin == 0,
            };
        let on_shift_path = !enable_sa1
            && match fault.site {
                FaultSite::Net(n) => !matches!(
                    scanned.netlist.net_driver(n),
                    Driver::Gate(g) if !scanned.netlist.gate(g).is_scan_path()
                ),
                FaultSite::GateInput(g, pin) => scanned.netlist.gate(g).is_scan_path() && pin != 1,
            };
        let r = chain_flush_test(&scanned, Some(fault)).unwrap();
        if on_shift_path {
            assert!(
                !r.passed(),
                "shift-path fault {fault} must fail the flush test"
            );
            shift_path_checked += 1;
        } else {
            // Functional-D pin of a scan mux: shifting is unaffected; the
            // conservative ChainTested classification is checked only for
            // not breaking the flush test logic.
            functional_pin_checked += 1;
        }
    }
    assert!(
        shift_path_checked > 10,
        "sample must cover shift-path faults"
    );
    assert!(functional_pin_checked > 0);
}
